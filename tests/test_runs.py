"""Tests for the scripted partial-run engine."""

import pytest

from repro.core.blocks import read_bound_partition
from repro.core.runs import (
    END,
    INITIAL,
    Deliver,
    Restore,
    ScriptedRun,
    StartRead,
    StartWrite,
    TerminateRound,
    find_first_mismatch,
    repair_against,
)
from repro.errors import ConstructionError, ConstructionEscape
from repro.registers.strawman import TwoRoundReadProtocol
from repro.types import BOTTOM


@pytest.fixture
def runner():
    partition = read_bound_partition(t=1)  # S=4, one object per block
    return ScriptedRun(lambda: TwoRoundReadProtocol(write_rounds=2), partition, t=1, n_readers=4)


def write_script(rounds=2, blocks=("B1", "B2", "B3")):
    steps = [StartWrite("write", 1)]
    for r in range(1, rounds + 1):
        steps.append(Deliver("write", r, blocks))
        steps.append(TerminateRound("write", r))
    return steps


def read_script(op="rd1", reader=1, skip1="B2", skip2="B1"):
    all_blocks = ("B1", "B2", "B3", "B4")
    return [
        StartRead(op, reader=reader),
        Deliver(op, 1, tuple(b for b in all_blocks if b != skip1)),
        TerminateRound(op, 1),
        Deliver(op, 2, tuple(b for b in all_blocks if b != skip2)),
        TerminateRound(op, 2),
    ]


class TestExecution:
    def test_complete_write_and_read(self, runner):
        result = runner.execute("run", write_script() + read_script())
        assert result.is_complete("write")
        assert result.returned("rd1") == 1

    def test_partial_round_leaves_op_incomplete(self, runner):
        script = write_script() + [
            StartRead("rd1", reader=1),
            Deliver("rd1", 1, ("B1", "B3", "B4")),
            # never terminated
        ]
        result = runner.execute("run", script)
        assert not result.is_complete("rd1")
        assert result.returned("rd1") is None

    def test_captures_before_every_delivery(self, runner):
        result = runner.execute("run", write_script())
        for pid in runner.partition.members("B1"):
            assert ("write", 1, pid) in result.captures
            assert ("write", 2, pid) in result.captures
            # Before round 1 the state is pristine.
            assert result.captures[("write", 1, pid)]["phase"] == 0
            assert result.captures[("write", 2, pid)]["phase"] == 1

    def test_initial_and_end_captures(self, runner):
        result = runner.execute("run", write_script())
        for pid in runner.ctx.objects:
            assert (*INITIAL, pid) in result.captures
            assert (*END, pid) in result.captures
        b4 = runner.partition.members("B4")[0]
        assert result.captures[(*END, b4)]["phase"] == 0  # write skipped B4

    def test_transcript_of_terminated_round(self, runner):
        result = runner.execute("run", write_script() + read_script())
        transcript = result.transcript("rd1", 1)
        assert transcript is not None
        assert len(transcript) == 3  # delivered to 3 of 4 blocks

    def test_transcript_none_for_unterminated(self, runner):
        script = write_script() + [
            StartRead("rd1", reader=1),
            Deliver("rd1", 1, ("B1", "B3", "B4")),
        ]
        result = runner.execute("run", script)
        assert result.transcript("rd1", 1) is None

    def test_history_reflects_ops(self, runner):
        result = runner.execute("run", write_script() + read_script())
        history = result.history()
        assert len(history.writes()) == 1
        assert history.reads()[0].value == 1

    def test_determinism_across_executions(self, runner):
        script = write_script() + read_script()
        first = runner.execute("a", script)
        second = runner.execute("b", script)
        assert first.transcript("rd1", 1) == second.transcript("rd1", 1)
        assert first.transcript("rd1", 2) == second.transcript("rd1", 2)


class TestScriptValidation:
    def test_duplicate_op_name_rejected(self, runner):
        with pytest.raises(ConstructionError):
            runner.execute("run", [StartWrite("op", 1), StartRead("op", reader=1)])

    def test_deliver_unknown_op_rejected(self, runner):
        with pytest.raises(ConstructionError):
            runner.execute("run", [Deliver("ghost", 1, ("B1",))])

    def test_deliver_wrong_round_rejected(self, runner):
        with pytest.raises(ConstructionError):
            runner.execute("run", [StartWrite("write", 1), Deliver("write", 2, ("B1",))])

    def test_double_delivery_to_same_object_rejected(self, runner):
        with pytest.raises(ConstructionError):
            runner.execute("run", [
                StartWrite("write", 1),
                Deliver("write", 1, ("B1",)),
                Deliver("write", 1, ("B1",)),
            ])

    def test_reader_index_validated(self, runner):
        with pytest.raises(ConstructionError):
            runner.execute("run", [StartRead("rd", reader=9)])

    def test_restore_missing_capture_rejected(self, runner):
        reference = runner.execute("ref", write_script())
        with pytest.raises(ConstructionError):
            runner.execute("run", [
                Restore(block="B1", source=reference.captures, point=("ghost", 1)),
            ])


class TestEscape:
    def test_insufficient_replies_escape(self, runner):
        """Terminating a round below the protocol's quorum must escape."""
        script = [
            StartWrite("write", 1),
            Deliver("write", 1, ("B1",)),  # 1 reply < S - t = 3
            TerminateRound("write", 1),
        ]
        with pytest.raises(ConstructionEscape) as excinfo:
            runner.execute("run", script)
        assert "write" in str(excinfo.value)

    def test_four_round_protocol_cannot_complete_in_two(self):
        """A 4-round-read protocol simply is not done after two rounds."""
        from repro.registers.fast_regular import FastRegularProtocol
        from repro.registers.transform_atomic import RegularToAtomicProtocol

        partition = read_bound_partition(t=1)
        runner = ScriptedRun(
            lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=4),
            partition, t=1, n_readers=4,
        )
        script = []
        for r in (1, 2):
            script.append(
                Deliver("rd1", r, ("B1", "B2", "B3")) if script else StartRead("rd1", reader=1)
            )
        # Build properly: start, then two full rounds.
        script = [
            StartRead("rd1", reader=1),
            Deliver("rd1", 1, ("B1", "B2", "B3")),
            TerminateRound("rd1", 1),
            Deliver("rd1", 2, ("B1", "B2", "B3")),
            TerminateRound("rd1", 2),
        ]
        result = runner.execute("run", script)
        assert not result.is_complete("rd1")
        assert result.ops["rd1"].rounds_used if hasattr(result.ops["rd1"], "rounds_used") else True


class TestRestoreAndRepair:
    def test_restore_rewinds_block_state(self, runner):
        reference = runner.execute("ref", write_script())
        script = write_script() + [
            Restore(block="B1", source=reference.captures, point=("write", 2)),
        ] + read_script(skip1="B2", skip2="B1")
        result = runner.execute("run", script)
        # B1 replied from its pre-round-2 state: phase 1, not 2.
        transcript = result.transcript("rd1", 1)
        b1 = runner.partition.members("B1")[0]
        b1_reply = dict(dict(transcript)[b1])
        assert b1_reply["phase"] == 1
        assert result.malicious_blocks == {"B1"}

    def test_find_first_mismatch_none_for_identical(self, runner):
        script = write_script() + read_script()
        a = runner.execute("a", script)
        b = runner.execute("b", script)
        assert find_first_mismatch(a, b, ["rd1"]) is None

    def test_find_first_mismatch_detects_divergence(self, runner):
        full = runner.execute("full", write_script(rounds=2) + read_script())
        trimmed = runner.execute("trimmed", write_script(rounds=1) + read_script())
        mismatch = find_first_mismatch(trimmed, full, ["rd1"])
        assert mismatch is not None
        op, round_no, pid = mismatch
        assert op == "rd1"

    def test_repair_inserts_restores_within_budget(self, runner):
        """Repairing a one-round-shorter write forges exactly B1..B3 (the
        blocks whose phase counter reflects the deleted round)."""
        reference = runner.execute("ref", write_script(rounds=2) + read_script())
        base = write_script(rounds=1) + read_script()
        repaired = repair_against(
            runner, "derived", base, reference,
            allowed_blocks=["B1", "B2", "B3"], compare_ops=["rd1"],
        )
        assert repaired.returned("rd1") == reference.returned("rd1")
        assert repaired.malicious_blocks == {"B1", "B2", "B3"}

    def test_repair_fails_outside_budget(self, runner):
        reference = runner.execute("ref", write_script(rounds=2) + read_script())
        base = write_script(rounds=1) + read_script()
        with pytest.raises(ConstructionError):
            repair_against(
                runner, "derived", base, reference,
                allowed_blocks=["B4"],  # the stale blocks B1/B3 are off-limits
                compare_ops=["rd1"],
            )
