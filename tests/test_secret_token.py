"""Tests for the secret-token regular register (DMSS09-style)."""

import pytest

from repro.faults.adversary import SilentBehavior
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.registers.base import RegisterSystem
from repro.registers.secret_token import SecretTokenProtocol, TokenAuthority
from repro.sim.network import RandomDelivery
from repro.spec.regularity import check_swmr_regularity
from repro.types import TaggedValue, Timestamp, object_id


def make_system(t=1, behaviors=None, policy=None):
    return RegisterSystem(SecretTokenProtocol(), t=t, n_readers=2,
                          behaviors=behaviors, policy=policy)


class TestTokenAuthority:
    def test_issue_verify_round_trip(self):
        authority = TokenAuthority()
        pair = TaggedValue(Timestamp(1), "a")
        token = authority.issue(pair)
        assert authority.verify(pair, token)

    def test_minted_tokens_are_unique(self):
        authority = TokenAuthority()
        pair = TaggedValue(Timestamp(1), "a")
        assert authority.issue(pair) != authority.issue(pair)

    def test_wrong_pair_fails_verification(self):
        authority = TokenAuthority()
        token = authority.issue(TaggedValue(Timestamp(1), "a"))
        assert not authority.verify(TaggedValue(Timestamp(2), "a"), token)
        assert not authority.verify(TaggedValue(Timestamp(1), "b"), token)

    def test_unissued_token_fails(self):
        authority = TokenAuthority()
        assert not authority.verify(TaggedValue(Timestamp(1), "a"), "tok-999")


class TestRoundComplexity:
    def test_one_round_reads_two_round_writes(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.max_rounds("read") == 1

    def test_one_round_reads_with_silent_byzantine(self):
        system = make_system(behaviors={object_id(2): SilentBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("read") == 1
        assert system.history().reads()[0].value == "a"


class TestUnforgeability:
    def test_fabricated_pairs_are_ignored(self):
        """The oracle denies the adversary exactly what secrets deny it."""
        system = make_system(behaviors={object_id(1): FabricatingBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.history().reads()[0].value == "a"

    def test_replayed_genuine_pairs_are_accepted_but_not_fresh(self):
        system = make_system()
        system.write("a", at=0)
        system.run()
        server = system.server(object_id(3))
        server.behavior = StaleEchoBehavior.freezing(server)  # replays ("a", token-a)
        system.write("b", at=10)
        system.read(1, at=60)
        system.run()
        # The replayed pair verifies (it is genuine) but loses to the
        # fresher verified report from a correct object.
        assert system.history().reads()[0].value == "b"

    def test_fabricator_with_max_timestamp_loses(self):
        def forge(message, honest):
            return {
                "pw": TaggedValue(Timestamp(10**9), "evil"),
                "pw_token": "tok-1",  # guessing a real token id for a wrong pair
                "w": TaggedValue(Timestamp(10**9), "evil"),
                "w_token": "tok-1",
            }

        system = make_system(behaviors={object_id(1): FabricatingBehavior(forge)})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.history().reads()[0].value == "a"


class TestRegularity:
    @pytest.mark.parametrize("seed", range(4))
    def test_regular_under_random_delays(self, seed):
        system = make_system(t=1, policy=RandomDelivery(seed=seed, max_latency=8))
        system.write("a", at=0)
        system.read(1, at=3)
        system.write("b", at=40)
        system.read(2, at=43)
        system.read(1, at=90)
        system.run()
        verdict = check_swmr_regularity(system.history())
        assert verdict.ok, verdict.explanation

    def test_initial_bottom_needs_no_token(self):
        from repro.types import BOTTOM

        system = make_system()
        system.read(1, at=0)
        system.run()
        assert system.history().reads()[0].value == BOTTOM
