"""Parallel trial execution: TrialSpec compilation, equivalence, fallback.

The contract under test: ``Cluster.run(..., parallel=True)`` and
``sweep(..., parallel=True)`` produce **byte-identical**
``to_dict()`` output to their serial counterparts for identical seeds,
because both paths execute the same pure :func:`repro.api.run_trial`
function over the same picklable :class:`repro.api.TrialSpec` values.
"""

import json
import pickle
import warnings

import pytest

from repro.api import Cluster, TrialSpec, run_trial, sweep

#: ≥3 protocols × ≥2 fault scenarios, covering crash and Byzantine regimes.
EQUIVALENCE_GRID = [
    ("abd", "fault-free"),
    ("abd", "crash"),
    ("fast-regular", "crash"),
    ("fast-regular", "replay"),
    ("secret-token", "replay"),
    ("atomic-fast-regular", "fault-free"),
    # mwmr-* advertises backend="multi-writer", so this cell auto-resolves
    # to the MWMR system yet sweeps through the same TrialSpec/run_trial
    # path; mw-abd stays on its default single backend here (the explicit
    # multi-writer route is covered by BACKEND_GRID below).
    ("mwmr-fast-regular", "replay"),
    ("mw-abd", "crash"),
]

#: Backend-pinned cells: (protocol, backend kwargs) for keyed/writer layouts.
BACKEND_GRID = [
    ("abd", dict(backend="sharded", keys=4)),
    ("fast-regular", dict(backend="sharded", keys=3)),
    ("mwmr-fast-regular", dict(n_writers=3)),
    ("mw-abd", dict(backend="multi-writer", n_writers=2)),
]


def _payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestTrialSpecs:
    def test_specs_are_picklable_and_pure(self):
        cluster = (
            Cluster("abd", t=1)
            .with_workload(operations=6, spacing=30)
            .check("atomicity")
        )
        specs = cluster._trial_specs(trials=2, seed=9, keep_history=False)
        assert [spec.trial for spec in specs] == [0, 1]
        assert [spec.workload_seed for spec in specs] == [9, 10]

        revived = pickle.loads(pickle.dumps(specs))
        assert revived == specs

        # run_trial is a pure function of the spec: repeated execution and
        # execution of a pickled copy give identical structured results.
        first = run_trial(specs[0]).to_dict()
        second = run_trial(specs[0]).to_dict()
        third = run_trial(revived[0]).to_dict()
        assert first == second == third

    def test_explicit_plan_specs_record_no_seed(self):
        cluster = Cluster("abd").with_operations([("write", "x", 0), ("read", 1, 40)])
        (spec,) = cluster._trial_specs(trials=1, seed=5, keep_history=False)
        assert spec.recorded_seed is None
        assert spec.explicit_plans is not None
        result = run_trial(spec)
        assert result.seed is None
        assert len(result.write_rounds) == 1 and len(result.read_rounds) == 1


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("protocol,scenario", EQUIVALENCE_GRID)
    def test_run_byte_identical(self, protocol, scenario):
        cluster = (
            Cluster(protocol, t=1, n_readers=2)
            .with_scenario(scenario)
            .with_workload(operations=8, spacing=40)
            .check("linearizability")
        )
        serial = cluster.run(trials=3, seed=21, keep_history=False)
        parallel = cluster.run(
            trials=3, seed=21, keep_history=False, parallel=True, max_workers=2
        )
        assert _payload(serial) == _payload(parallel)

    def test_failing_checks_identical_across_modes(self):
        # Fabricating objects defeat ABD; failure *explanations* embed
        # operation ids, so this pins the deterministic serial numbering.
        cluster = (
            Cluster("abd", t=1)
            .with_faults("fabricating", count=1)
            .with_workload(operations=10, spacing=20)
            .check("atomicity")
        )
        serial = cluster.run(trials=4, seed=2, keep_history=False)
        parallel = cluster.run(
            trials=4, seed=2, keep_history=False, parallel=True, max_workers=2
        )
        assert _payload(serial) == _payload(parallel)
        assert serial.failures()  # the scenario actually produces failures

    @pytest.mark.parametrize("protocol,backend_kwargs", BACKEND_GRID)
    def test_backend_runs_byte_identical(self, protocol, backend_kwargs):
        cluster = (
            Cluster(protocol, t=1, n_readers=2, **backend_kwargs)
            .with_workload(operations=8, spacing=60, key_skew=0.8)
            .check("atomicity")
        )
        serial = cluster.run(trials=3, seed=14, keep_history=False)
        parallel = cluster.run(
            trials=3, seed=14, keep_history=False, parallel=True, max_workers=2
        )
        assert _payload(serial) == _payload(parallel)

    def test_sweep_byte_identical_and_flattened(self):
        kwargs = dict(t=1, operations=6, trials=2, checks=("regularity",))
        serial = sweep(["abd", "secret-token"], **kwargs)
        parallel = sweep(["abd", "secret-token"], parallel=True, max_workers=2, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_sharded_sweep_byte_identical(self):
        kwargs = dict(
            t=1, operations=8, trials=2, checks=("atomicity",),
            backend="sharded", keys=3, key_skew=1.0, scenarios=("fault-free", "crash"),
        )
        serial = sweep(["abd", "fast-regular"], **kwargs)
        parallel = sweep(["abd", "fast-regular"], parallel=True, max_workers=2, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )
        for run in serial.runs:
            assert run.backend == "sharded" and run.key_count == 3

    def test_mixed_registry_sweep_resolves_backends_per_protocol(self):
        result = sweep(
            ["abd", "mwmr-fast-regular"],
            t=1, operations=6, trials=1, scenarios=("fault-free",),
            checks=("atomicity",), parallel=True, max_workers=2,
        )
        by_name = {run.protocol: run for run in result.runs}
        assert by_name["abd"].backend == "single"
        assert by_name["mwmr-fast-regular"].backend == "multi-writer"
        assert all(run.ok for run in result.runs)

    def test_histories_survive_the_process_boundary(self):
        result = Cluster("abd").check("atomicity").run(
            trials=2, seed=1, parallel=True, max_workers=2
        )
        assert all(trial.history is not None for trial in result.trials)
        assert len(result.trials[0].history.records) > 0


class TestSerialFallback:
    def test_unpicklable_explicit_plans_warn_and_run_serially(self):
        class Opaque:
            def __reduce__(self):
                raise TypeError("live object, refuses pickling")

        cluster = Cluster("abd").with_operations([("write", Opaque(), 0)])
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = cluster.run(trials=2, parallel=True)
        assert len(result.trials) == 2

    def test_serial_run_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Cluster("abd").run(trials=2, seed=0)

    def test_single_trial_parallel_stays_in_process(self):
        # One trial gains nothing from a pool; no warning, same result.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            serial = Cluster("abd").check("atomicity").run(trials=1, seed=4)
            parallel = Cluster("abd").check("atomicity").run(
                trials=1, seed=4, parallel=True
            )
        assert _payload(serial) == _payload(parallel)


class TestScopedSerials:
    def test_facade_runs_do_not_corrupt_live_systems(self):
        # A hand-held system interleaved with facade runs must keep
        # allocating fresh operation serials — run_trial scopes its reset.
        from repro.registers.base import RegisterSystem
        from repro.registers.abd import AbdProtocol

        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        for index in range(10):
            system.write(f"v{index}", at=index * 600)
        Cluster("abd").with_workload(operations=5).run(trials=2, seed=0)
        system.read(1, at=7000)  # would raise "duplicate invocation" before
        system.run()
        history = system.history()
        assert len({r.op_id for r in history.records}) == len(history.records)


class TestConfigurationErrorsSurfaceInParent:
    def test_strict_overfault_raises_before_any_pool_work(self):
        from repro.errors import ConfigurationError

        cluster = Cluster("fast-regular", t=1).with_faults("silent", count=2, strict=True)
        with pytest.raises(ConfigurationError, match="strict"):
            cluster.run(trials=4, parallel=True, max_workers=2)

    def test_trial_count_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Cluster("abd").run(trials=0, parallel=True)
