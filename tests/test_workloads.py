"""Tests for workload generation and scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import OperationPlan, WorkloadGenerator, apply_plan
from repro.workloads.scenarios import standard_scenarios


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(seed=5).plan(30)
        b = WorkloadGenerator(seed=5).plan(30)
        assert a == b

    def test_different_seeds_differ(self):
        assert WorkloadGenerator(seed=1).plan(30) != WorkloadGenerator(seed=2).plan(30)

    def test_plan_length(self):
        assert len(WorkloadGenerator().plan(17)) == 17

    def test_read_fraction_extremes(self):
        reads_only = WorkloadGenerator(read_fraction=1.0).plan(20)
        assert all(p.kind == "read" for p in reads_only)
        writes_only = WorkloadGenerator(read_fraction=0.0).plan(20)
        assert all(p.kind == "write" for p in writes_only)

    def test_write_values_unique(self):
        plans = WorkloadGenerator(read_fraction=0.0).plan(20)
        values = [p.value for p in plans]
        assert len(set(values)) == len(values)

    def test_per_client_sequentiality_window(self):
        plans = WorkloadGenerator(seed=3, read_fraction=0.5, spacing=1).plan(60)
        last: dict = {}
        for plan in plans:
            key = (plan.kind, plan.client_index)
            if key in last:
                assert plan.at >= last[key] + 500
            last[key] = plan.at

    def test_client_indices_in_range(self):
        plans = WorkloadGenerator(seed=1, n_readers=3).plan(50)
        for plan in plans:
            if plan.kind == "read":
                assert 1 <= plan.client_index <= 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(read_fraction=2.0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(n_readers=0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(spacing=-1)

    def test_apply_plan_drives_register_system(self):
        from repro.registers.abd import AbdProtocol
        from repro.registers.base import RegisterSystem
        from repro.spec.atomicity import check_swmr_atomicity

        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        apply_plan(system, WorkloadGenerator(seed=7, spacing=50).plan(12))
        system.run()
        history = system.history()
        assert len(history.complete()) == 12
        assert check_swmr_atomicity(history).ok


class TestKeyedGenerator:
    def test_keyless_plans_carry_no_key(self):
        assert all(p.key is None for p in WorkloadGenerator(seed=1).plan(20))

    def test_keyed_plans_deterministic_per_seed(self):
        a = WorkloadGenerator(seed=5, keys=4, key_skew=1.0).plan(40)
        b = WorkloadGenerator(seed=5, keys=4, key_skew=1.0).plan(40)
        assert a == b
        assert a != WorkloadGenerator(seed=6, keys=4, key_skew=1.0).plan(40)

    def test_key_count_expands_to_names(self):
        generator = WorkloadGenerator(seed=1, keys=3)
        assert generator.keys == ("k1", "k2", "k3")
        assert all(p.key in generator.keys for p in generator.plan(30))

    def test_explicit_key_names_pass_through(self):
        generator = WorkloadGenerator(seed=1, keys=("users", "orders"))
        assert {p.key for p in generator.plan(40)} <= {"users", "orders"}

    def test_zero_skew_is_roughly_uniform(self):
        plans = WorkloadGenerator(seed=7, keys=4, key_skew=0.0).plan(400)
        counts = {key: 0 for key in ("k1", "k2", "k3", "k4")}
        for plan in plans:
            counts[plan.key] += 1
        assert min(counts.values()) > 50  # uniform expectation: 100 each

    def test_skew_concentrates_on_the_first_keys(self):
        plans = WorkloadGenerator(seed=7, keys=8, key_skew=2.0).plan(400)
        counts: dict = {}
        for plan in plans:
            counts[plan.key] = counts.get(plan.key, 0) + 1
        # Zipf(2) over 8 ranks puts ~65% of the mass on k1.
        assert counts.get("k1", 0) > 3 * counts.get("k8", 0)
        assert counts.get("k1", 0) > counts.get("k2", 0)

    def test_per_key_write_windows_are_independent(self):
        # Each key has its own writer, so writes serialize per key only;
        # readers stay sequential across the whole keyspace.
        plans = WorkloadGenerator(seed=3, keys=4, read_fraction=0.5, spacing=1).plan(80)
        last: dict = {}
        for plan in plans:
            window = (
                ("write", plan.client_index, plan.key)
                if plan.kind == "write"
                else ("read", plan.client_index)
            )
            if window in last:
                assert plan.at >= last[window] + 500
            last[window] = plan.at

    def test_key_streams_partition_the_schedule(self):
        generator = WorkloadGenerator(seed=9, keys=3, key_skew=0.5)
        streams = WorkloadGenerator(seed=9, keys=3, key_skew=0.5).key_streams(30)
        merged = sorted(
            (p for stream in streams.values() for p in stream),
            key=lambda p: (p.at, p.kind, p.client_index),
        )
        direct = sorted(
            generator.plan(30), key=lambda p: (p.at, p.kind, p.client_index)
        )
        assert merged == direct
        assert all(p.key == key for key, stream in streams.items() for p in stream)

    def test_key_streams_require_keys(self):
        with pytest.raises(ConfigurationError, match="keys"):
            WorkloadGenerator(seed=1).key_streams(10)

    def test_keyed_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(keys=0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(keys=("a", "a"))
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(keys=("a/b",))
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(keys=2, key_skew=-1.0)


class TestScenarios:
    def test_standard_set(self):
        names = [s.name for s in standard_scenarios(t=1)]
        assert names == ["fault-free", "crash", "silent", "replay", "fabricate"]

    def test_fault_plans_respect_threshold(self):
        for scenario in standard_scenarios(t=2):
            behaviors = scenario.fault_plan.behaviors(t=2)
            assert len(behaviors) <= 2

    def test_fault_free_has_no_behaviors(self):
        scenario = standard_scenarios(t=3)[0]
        assert scenario.fault_plan.behaviors(t=3) == {}

    def test_behaviors_are_fresh_instances(self):
        scenario = standard_scenarios(t=2)[1]
        behaviors = scenario.fault_plan.behaviors(t=2)
        instances = list(behaviors.values())
        assert instances[0] is not instances[1]
