"""Tests for workload generation and scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import OperationPlan, WorkloadGenerator, apply_plan
from repro.workloads.scenarios import standard_scenarios


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(seed=5).plan(30)
        b = WorkloadGenerator(seed=5).plan(30)
        assert a == b

    def test_different_seeds_differ(self):
        assert WorkloadGenerator(seed=1).plan(30) != WorkloadGenerator(seed=2).plan(30)

    def test_plan_length(self):
        assert len(WorkloadGenerator().plan(17)) == 17

    def test_read_fraction_extremes(self):
        reads_only = WorkloadGenerator(read_fraction=1.0).plan(20)
        assert all(p.kind == "read" for p in reads_only)
        writes_only = WorkloadGenerator(read_fraction=0.0).plan(20)
        assert all(p.kind == "write" for p in writes_only)

    def test_write_values_unique(self):
        plans = WorkloadGenerator(read_fraction=0.0).plan(20)
        values = [p.value for p in plans]
        assert len(set(values)) == len(values)

    def test_per_client_sequentiality_window(self):
        plans = WorkloadGenerator(seed=3, read_fraction=0.5, spacing=1).plan(60)
        last: dict = {}
        for plan in plans:
            key = (plan.kind, plan.client_index)
            if key in last:
                assert plan.at >= last[key] + 500
            last[key] = plan.at

    def test_client_indices_in_range(self):
        plans = WorkloadGenerator(seed=1, n_readers=3).plan(50)
        for plan in plans:
            if plan.kind == "read":
                assert 1 <= plan.client_index <= 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(read_fraction=2.0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(n_readers=0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(spacing=-1)

    def test_apply_plan_drives_register_system(self):
        from repro.registers.abd import AbdProtocol
        from repro.registers.base import RegisterSystem
        from repro.spec.atomicity import check_swmr_atomicity

        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        apply_plan(system, WorkloadGenerator(seed=7, spacing=50).plan(12))
        system.run()
        history = system.history()
        assert len(history.complete()) == 12
        assert check_swmr_atomicity(history).ok


class TestScenarios:
    def test_standard_set(self):
        names = [s.name for s in standard_scenarios(t=1)]
        assert names == ["fault-free", "crash", "silent", "replay", "fabricate"]

    def test_fault_plans_respect_threshold(self):
        for scenario in standard_scenarios(t=2):
            behaviors = scenario.fault_plan.behaviors(t=2)
            assert len(behaviors) <= 2

    def test_fault_free_has_no_behaviors(self):
        scenario = standard_scenarios(t=3)[0]
        assert scenario.fault_plan.behaviors(t=3) == {}

    def test_behaviors_are_fresh_instances(self):
        scenario = standard_scenarios(t=2)[1]
        behaviors = scenario.fault_plan.behaviors(t=2)
        instances = list(behaviors.values())
        assert instances[0] is not instances[1]
