"""Tests for the SWMR→MWMR transformation."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import SilentBehavior
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.secret_token import SecretTokenProtocol
from repro.registers.transform_mwmr import MultiWriterRegisterSystem
from repro.spec.linearizability import is_linearizable
from repro.types import object_id


def make_system(t=1, n_writers=2, n_readers=1, behaviors=None, substrate=None):
    return MultiWriterRegisterSystem(
        substrate or (lambda: FastRegularProtocol()),
        t=t, n_writers=n_writers, n_readers=n_readers, behaviors=behaviors,
    )


class TestBasics:
    def test_write_then_read(self):
        system = make_system()
        system.write(1, "a", at=0)
        system.read(1, at=100)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "a"
        assert is_linearizable(history)

    def test_two_writers_last_wins(self):
        system = make_system()
        system.write(1, "from-w1", at=0)
        system.write(2, "from-w2", at=200)
        system.read(1, at=400)
        system.run()
        assert system.history().reads()[0].value == "from-w2"

    def test_round_counts(self):
        """MWMR over the 4-round-read SWMR atomic: reads 4, writes 6."""
        system = make_system()
        system.write(1, "a", at=0)
        system.read(1, at=100)
        system.run()
        write_op = next(o for o in system.simulator.completed_operations()
                        if o.op_id.kind == "write")
        read_op = next(o for o in system.simulator.completed_operations()
                       if o.op_id.kind == "read")
        assert write_op.rounds_used == 6
        assert read_op.rounds_used == 4

    def test_token_substrate_shaves_a_round(self):
        system = make_system(substrate=lambda: SecretTokenProtocol())
        system.write(1, "a", at=0)
        system.read(1, at=100)
        system.run()
        read_op = next(o for o in system.simulator.completed_operations()
                       if o.op_id.kind == "read")
        assert read_op.rounds_used == 3


class TestConcurrency:
    def test_concurrent_writers_linearizable(self):
        system = make_system()
        system.write(1, "a", at=0)
        system.write(2, "b", at=2)
        system.read(1, at=150)
        system.run()
        history = system.history()
        assert is_linearizable(history)
        assert history.reads()[0].value in ("a", "b")

    def test_writer_timestamps_totally_ordered(self):
        system = make_system()
        system.write(1, "a", at=0)
        system.write(2, "b", at=200)
        system.write(1, "c", at=400)
        system.read(1, at=600)
        system.run()
        assert system.history().reads()[0].value == "c"
        assert is_linearizable(system.history())

    def test_tolerates_silent_byzantine(self):
        system = make_system(behaviors={object_id(1): SilentBehavior()})
        system.write(1, "a", at=0)
        system.write(2, "b", at=200)
        system.read(1, at=400)
        system.run()
        history = system.history()
        assert len(history.complete()) == 3
        assert is_linearizable(history)


class TestConfiguration:
    def test_writer_index_validated(self):
        system = make_system(n_writers=2)
        with pytest.raises(ConfigurationError):
            system.write(3, "x")

    def test_reader_index_validated(self):
        system = make_system(n_readers=1)
        with pytest.raises(ConfigurationError):
            system.read(2)

    def test_needs_a_writer(self):
        with pytest.raises(ConfigurationError):
            make_system(n_writers=0)

    def test_over_threshold_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system(t=1, behaviors={
                object_id(1): SilentBehavior(),
                object_id(2): SilentBehavior(),
            })
