"""Unit and property tests for the write-bound recurrence (Lemma 2 math)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.recurrence import (
    closed_form,
    largest_k_for,
    max_write_rounds,
    recurrence_sequence,
    resilience_bound,
    t_k,
    verify_log_identity,
)
from repro.errors import ConfigurationError


class TestRecurrence:
    def test_base_cases(self):
        assert t_k(-1) == 0
        assert t_k(0) == 0

    def test_paper_values(self):
        """t_1..t_4 = 1, 2, 5, 10 — the Figure 2 instance uses t_4 = 10."""
        assert recurrence_sequence(4) == [1, 2, 5, 10]

    def test_recurrence_step(self):
        for k in range(1, 20):
            assert t_k(k) == t_k(k - 1) + 2 * t_k(k - 2) + 1

    def test_rejects_below_minus_one(self):
        with pytest.raises(ConfigurationError):
            t_k(-2)

    @given(st.integers(0, 60))
    def test_closed_form_matches_recurrence(self, k):
        """t_k = (2^{k+2} − (−1)^k − 3)/6, exactly (Lemma 2)."""
        assert closed_form(k) == t_k(k)

    @given(st.integers(1, 40))
    def test_strictly_increasing(self, k):
        assert t_k(k) > t_k(k - 1)

    @given(st.integers(1, 40))
    def test_roughly_doubles(self, k):
        """t_k ~ 2^{k+2}/6: each step roughly doubles (the log comes from here)."""
        assert 2 * t_k(k) <= t_k(k + 1) + 1
        assert t_k(k + 1) <= 2 * t_k(k) + 2


class TestLogBound:
    def test_paper_statement_k_of_t(self):
        # k <= floor(log2(ceil((3t+1)/2)))
        assert max_write_rounds(1) == 1
        assert max_write_rounds(2) == 2
        assert max_write_rounds(5) == 3
        assert max_write_rounds(10) == 4

    def test_reader_cap(self):
        assert max_write_rounds(10, R=2) == 2
        assert max_write_rounds(10, R=100) == 4

    @given(st.integers(1, 100_000))
    def test_log_identity(self, t):
        """Largest affordable k from the recurrence == the closed-form bound."""
        assert verify_log_identity(t)

    @given(st.integers(1, 10_000))
    def test_bound_is_logarithmic(self, t):
        import math

        k = max_write_rounds(t)
        assert k <= math.log2(3 * t + 1)
        assert k >= math.log2(t) / 2  # loose lower envelope: Ω(log t)

    def test_rejects_t_zero(self):
        with pytest.raises(ConfigurationError):
            max_write_rounds(0)


class TestResilienceScaling:
    def test_proposition_2_statement(self):
        # S <= 3t + floor(t/t_k)
        assert resilience_bound(10, 4) == 31
        assert resilience_bound(20, 4) == 62

    def test_needs_t_at_least_t_k(self):
        with pytest.raises(ConfigurationError):
            resilience_bound(4, 3)  # t_3 = 5 > 4

    def test_needs_positive_k(self):
        with pytest.raises(ConfigurationError):
            resilience_bound(5, 0)

    @given(st.integers(1, 8))
    def test_scaling_consistent_with_optimal_resilience(self, k):
        t = t_k(k)
        # At t exactly t_k the bound is 3t+1: optimal resilience.
        assert resilience_bound(t, k) == 3 * t + 1

    def test_largest_k_examples(self):
        assert largest_k_for(0) == 0
        assert largest_k_for(1) == 1
        assert largest_k_for(4) == 2
        assert largest_k_for(9) == 3
        assert largest_k_for(10) == 4
