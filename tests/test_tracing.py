"""Tests for message tracing and reply transcripts."""

from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.sim.tracing import MessageTrace, TraceKind, merge_transcripts


def run_abd():
    system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
    write_op = system.write("a", at=0)
    read_op = system.read(1, at=50)
    system.run()
    return system, write_op, read_op


class TestTraceQueries:
    def test_round_trip_count_matches_engine(self):
        system, write_op, read_op = run_abd()
        assert system.trace.round_trip_count(write_op.op_id) == 1
        assert system.trace.round_trip_count(read_op.op_id) == 2

    def test_replies_for_operation(self):
        system, _, read_op = run_abd()
        replies = system.trace.replies_for_operation(read_op.op_id)
        assert all(m.is_reply for m in replies)
        assert len(replies) == 6  # 3 objects × 2 rounds (S=3, unit latency)

    def test_delivered_to_client(self):
        system, _, read_op = run_abd()
        delivered = system.trace.delivered_to(read_op.client)
        assert delivered
        assert all(m.dst == read_op.client for m in delivered)

    def test_messages_between_in_order(self):
        from repro.types import object_id, writer_id

        system, _, _ = run_abd()
        messages = system.trace.messages_between(writer_id(), object_id(1))
        assert [m.round_no for m in messages] == sorted(m.round_no for m in messages)

    def test_client_transcript_is_canonical(self):
        system, _, read_op = run_abd()
        transcript = system.trace.client_transcript(read_op.op_id)
        keys = [(e.round_no, e.source) for e in transcript]
        assert keys == sorted(keys)
        assert {entry.round_no for entry in transcript} == {1, 2}

    def test_transcripts_equal_for_identical_runs(self):
        system_a, _, read_a = run_abd()
        system_b, _, read_b = run_abd()
        a = [(e.round_no, e.source, e.payload_items)
             for e in system_a.trace.client_transcript(read_a.op_id)]
        b = [(e.round_no, e.source, e.payload_items)
             for e in system_b.trace.client_transcript(read_b.op_id)]
        assert a == b

    def test_merge_transcripts(self):
        system, _, read_op = run_abd()
        merged = merge_transcripts([system.trace], read_op.op_id)
        assert merged == system.trace.client_transcript(read_op.op_id)

    def test_event_kinds_recorded(self):
        system, _, _ = run_abd()
        kinds = {event.kind for event in system.trace.events}
        assert TraceKind.SEND in kinds
        assert TraceKind.DELIVER in kinds
