"""Tests for message tracing and reply transcripts."""

import io
import json

from repro.faults.adversary import SilentBehavior
from repro.faults.schedules import WithholdFrom
from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.sim.tracing import MessageTrace, TraceKind, dump_trace_jsonl, merge_transcripts
from repro.types import object_id, scoped_operation_serials


def run_abd():
    system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
    write_op = system.write("a", at=0)
    read_op = system.read(1, at=50)
    system.run()
    return system, write_op, read_op


class TestTraceQueries:
    def test_round_trip_count_matches_engine(self):
        system, write_op, read_op = run_abd()
        assert system.trace.round_trip_count(write_op.op_id) == 1
        assert system.trace.round_trip_count(read_op.op_id) == 2

    def test_replies_for_operation(self):
        system, _, read_op = run_abd()
        replies = system.trace.replies_for_operation(read_op.op_id)
        assert all(m.is_reply for m in replies)
        assert len(replies) == 6  # 3 objects × 2 rounds (S=3, unit latency)

    def test_delivered_to_client(self):
        system, _, read_op = run_abd()
        delivered = system.trace.delivered_to(read_op.client)
        assert delivered
        assert all(m.dst == read_op.client for m in delivered)

    def test_messages_between_in_order(self):
        from repro.types import object_id, writer_id

        system, _, _ = run_abd()
        messages = system.trace.messages_between(writer_id(), object_id(1))
        assert [m.round_no for m in messages] == sorted(m.round_no for m in messages)

    def test_client_transcript_is_canonical(self):
        system, _, read_op = run_abd()
        transcript = system.trace.client_transcript(read_op.op_id)
        keys = [(e.round_no, e.source) for e in transcript]
        assert keys == sorted(keys)
        assert {entry.round_no for entry in transcript} == {1, 2}

    def test_transcripts_equal_for_identical_runs(self):
        system_a, _, read_a = run_abd()
        system_b, _, read_b = run_abd()
        a = [(e.round_no, e.source, e.payload_items)
             for e in system_a.trace.client_transcript(read_a.op_id)]
        b = [(e.round_no, e.source, e.payload_items)
             for e in system_b.trace.client_transcript(read_b.op_id)]
        assert a == b

    def test_merge_transcripts(self):
        system, _, read_op = run_abd()
        merged = merge_transcripts([system.trace], read_op.op_id)
        assert merged == system.trace.client_transcript(read_op.op_id)

    def test_event_kinds_recorded(self):
        system, _, _ = run_abd()
        kinds = {event.kind for event in system.trace.events}
        assert TraceKind.SEND in kinds
        assert TraceKind.DELIVER in kinds


class TestIndistinguishability:
    """The proofs' core device, pinned on one concrete pair of runs.

    A reader cannot distinguish an object that is *silent-faulty* from a
    correct object whose replies the adversary keeps in transit: in both
    partial runs the reader's reply transcript — the only thing it
    observes — is identical.  (The runs differ globally: the withheld
    run's messages exist, parked in transit; the silent run's were never
    sent.)
    """

    @staticmethod
    def _run(behaviors=None, policy=None):
        with scoped_operation_serials():
            system = RegisterSystem(
                FastRegularProtocol(), t=1, S=4, n_readers=2,
                behaviors=behaviors or {}, policy=policy,
            )
            write_op = system.write("v1", at=0)
            read_op = system.read(1, at=100)
            system.run()
            return system, write_op, read_op

    def test_silent_fault_vs_withheld_replies(self):
        silent, silent_write, silent_read = self._run(
            behaviors={object_id(1): SilentBehavior()}
        )
        withheld, held_write, held_read = self._run(
            policy=WithholdFrom([object_id(1)])
        )
        # Identical reply transcripts for the reader and the writer: the
        # two runs are indistinguishable to both clients.
        assert (
            silent.trace.client_transcript(silent_read.op_id)
            == withheld.trace.client_transcript(held_read.op_id)
        )
        assert (
            silent.trace.client_transcript(silent_write.op_id)
            == withheld.trace.client_transcript(held_write.op_id)
        )
        # Both runs complete with the same results ...
        assert silent_read.result == held_read.result == "v1"
        # ... yet they are *globally* different partial runs: the withheld
        # run has s1's replies parked in transit, the silent run has none.
        assert withheld.simulator.network.held_messages
        assert not silent.simulator.network.held_messages

    def test_distinguishable_once_the_held_reply_lands(self):
        # Releasing the withheld replies breaks the indistinguishability
        # at the wire level: s1 now appears in the delivered set.
        withheld, _, held_read = self._run(policy=WithholdFrom([object_id(1)]))
        before = {m.src for m in withheld.trace.delivered_to(held_read.client)}
        assert object_id(1) not in before
        withheld.simulator.network.release_held()
        withheld.run()
        after = {m.src for m in withheld.trace.delivered_to(held_read.client)}
        assert object_id(1) in after


class TestTraceSerialization:
    def test_event_to_dict_is_json_safe(self):
        system, _, read_op = run_abd()
        for event in system.trace.events:
            record = event.to_dict()
            json.dumps(record)  # raises on non-JSON-able leftovers
            assert record["kind"] in {"send", "deliver", "hold", "drop"}
            assert record["op_serial"] >= 1
            assert isinstance(record["payload"], dict)

    def test_dump_trace_jsonl_round_trips_structure(self):
        system, _, _ = run_abd()
        sink = io.StringIO()
        written = dump_trace_jsonl(system.trace, sink, extra={"trial": 7})
        lines = [line for line in sink.getvalue().splitlines() if line]
        assert written == len(system.trace.events) == len(lines)
        parsed = [json.loads(line) for line in lines]
        assert all(record["trial"] == 7 for record in parsed)
        assert parsed[0]["time"] == system.trace.events[0].time

    def test_payload_values_round_trip_through_codec(self):
        # Timestamps/TaggedValues in dumped payloads decode back to the
        # exact live values — the old str() rendering was lossy.
        from repro.storage.codec import unpack_value

        system, _, _ = run_abd()
        checked = 0
        for event in system.trace.events:
            record = event.to_dict()
            json.dumps(record)
            for key, live in sorted(event.message.payload.items()):
                assert unpack_value(record["payload"][key]) == live
                checked += 1
        assert checked > 0

    def test_primitive_payloads_render_exactly_as_before(self):
        # Plain scalars pass through the codec untouched, so dumps of
        # primitive-only payloads stay byte-identical to older files.
        from repro.sim.network import Message
        from repro.sim.tracing import TraceEvent
        from repro.types import object_id, writer_id

        system, write_op, _ = run_abd()
        event = TraceEvent(
            time=3,
            kind=TraceKind.SEND,
            message=Message(
                src=writer_id(), dst=object_id(1), op=write_op.op_id,
                round_no=1, tag="X", payload={"a": 1, "b": "two", "c": None},
            ),
        )
        assert event.to_dict()["payload"] == {"a": 1, "b": "two", "c": None}

    def test_unencodable_payload_values_fall_back_to_str(self):
        from repro.sim.network import Message
        from repro.sim.tracing import TraceEvent
        from repro.types import object_id, writer_id

        class Weird:
            def __str__(self):
                return "weird!"

        system, write_op, _ = run_abd()
        event = TraceEvent(
            time=3,
            kind=TraceKind.SEND,
            message=Message(
                src=writer_id(), dst=object_id(1), op=write_op.op_id,
                round_no=1, tag="X", payload={"w": Weird()},
            ),
        )
        assert event.to_dict()["payload"] == {"w": "weird!"}
