"""Adversarial schedules as first-class facade citizens.

Covers :meth:`Cluster.with_schedule` (plan-addressed
:class:`~repro.faults.schedules.PlannedSkip` rules), the scenario
registry's ``policy_factory`` hook, and their interplay with the parallel
trial engine.
"""

import json

import pytest

from repro.api import Cluster
from repro.errors import ConfigurationError
from repro.faults.schedules import PlannedSchedulePolicy, PlannedSkip
from repro.types import object_id
from repro.workloads.scenarios import FaultPlan, Scenario, register_scenario


def write_read_cluster(**kwargs):
    return (
        Cluster("fast-regular", t=1, S=4, **kwargs)
        .with_operations([("write", "v1", 0), ("read", 1, 120)])
        .check("regularity")
    )


class TestPlannedSkip:
    def test_matches_invocations_of_its_round(self):
        from repro.sim.network import Message
        from repro.types import writer_id

        skip = PlannedSkip(op=1, objects=(2, 3), round_no=1)
        make = lambda dst, rnd, reply=False: Message(  # noqa: E731
            src=writer_id() if not reply else object_id(dst),
            dst=object_id(dst) if not reply else writer_id(),
            op=_op_with_serial(1),
            round_no=rnd,
            tag="T",
            payload={},
            is_reply=reply,
        )
        assert skip.matches(make(2, 1))
        assert not skip.matches(make(2, 2))      # other round
        assert not skip.matches(make(4, 1))      # object outside the block
        assert not skip.matches(make(2, 1, reply=True))  # replies flow

    def test_withhold_replies_extends_to_reply_direction(self):
        from repro.sim.network import Message
        from repro.types import writer_id

        skip = PlannedSkip(op=1, objects=(2,), withhold_replies=True)
        reply = Message(
            src=object_id(2), dst=writer_id(), op=_op_with_serial(1),
            round_no=1, tag="T", payload={}, is_reply=True,
        )
        assert skip.matches(reply)


def _op_with_serial(serial):
    from repro.types import OperationId, writer_id

    return OperationId(client=writer_id(), kind="write", serial=serial)


class TestWithSchedule:
    def test_skipped_write_stays_incomplete(self):
        # Op 1 (the write) skips {s1, s2}: only 2 of the S−t = 3 acks it
        # needs can arrive, so the write is a partial-run operation — and
        # the reader, which still hears everyone, keeps regularity.
        result = write_read_cluster().with_schedule((1, (1, 2))).run(trials=1)
        trial = result.trials[0]
        assert trial.incomplete == 1
        assert trial.checks["regularity"].ok

    def test_round_scoped_skip_only_delays(self):
        # Skipping only round 1 of the read leaves rounds ≥ 2 untouched;
        # round 1 can still terminate on the remaining 3 replies.
        result = write_read_cluster().with_schedule((2, (4,), 1)).run(trials=1)
        trial = result.trials[0]
        assert trial.incomplete == 0
        assert trial.checks["regularity"].ok

    def test_withheld_replies_model_slow_correct_objects(self):
        result = (
            write_read_cluster()
            .with_schedule(PlannedSkip(op=2, objects=(4,), withhold_replies=True))
            .run(trials=1)
        )
        trial = result.trials[0]
        assert trial.incomplete == 0  # quorum 3 of 4 still reachable
        assert trial.checks["regularity"].ok

    def test_schedule_changes_the_run(self):
        baseline = write_read_cluster().run(trials=1, keep_trace=True)
        skipped = (
            write_read_cluster().with_schedule((1, (1, 2))).run(trials=1, keep_trace=True)
        )
        held = skipped.trials[0].trace
        base = baseline.trials[0].trace
        assert not base.events or all(e.kind.value != "hold" for e in base.events)
        assert any(e.kind.value == "hold" for e in held.events)

    def test_rules_stack_across_calls(self):
        cluster = write_read_cluster().with_schedule((1, (1,))).with_schedule((2, (4,)))
        assert len(cluster._schedule) == 2

    def test_build_backend_applies_the_schedule(self):
        backend = write_read_cluster().with_schedule((1, (1,))).build_backend()
        policy = backend.simulator.network.policy
        assert isinstance(policy, PlannedSchedulePolicy)
        assert policy.skips[0].objects == (1,)

    def test_shorthand_validation(self):
        cluster = write_read_cluster()
        with pytest.raises(ConfigurationError):
            cluster.with_schedule((0, (1,)))        # 0-based op
        with pytest.raises(ConfigurationError):
            cluster.with_schedule((1, (0,)))        # 0-based object
        with pytest.raises(ConfigurationError):
            cluster.with_schedule((1, ()))          # empty block
        with pytest.raises(ConfigurationError):
            cluster.with_schedule((1, (1,), 2, 3))  # too many elements
        with pytest.raises(ConfigurationError):
            cluster.with_schedule((1,))             # too few elements
        with pytest.raises(ConfigurationError):
            cluster.with_schedule((1, 2))           # scalar block

    def test_parallel_scheduled_trials_byte_identical(self):
        cluster = write_read_cluster().with_schedule((1, (1, 2)))
        serial = cluster.run(trials=3, seed=5)
        parallel = cluster.run(trials=3, seed=5, parallel=True)
        assert (
            json.dumps(serial.to_dict(), sort_keys=True)
            == json.dumps(parallel.to_dict(), sort_keys=True)
        )


class TestScenarioPolicies:
    def test_policy_factory_reaches_the_trial_fabric(self):
        register_scenario(
            "skip-first-write",
            lambda t: Scenario(
                name="skip-first-write",
                fault_plan=FaultPlan("none", 0, None),
                description="op 1 skips {s1, s2} — a schedule, not a fault",
                policy_factory=lambda: PlannedSchedulePolicy(
                    [PlannedSkip(op=1, objects=(1, 2))]
                ),
            ),
            overwrite=True,
        )
        result = (
            Cluster("fast-regular", t=1, S=4)
            .with_scenario("skip-first-write")
            .with_operations([("write", "v1", 0), ("read", 1, 120)])
            .check("regularity")
            .run(trials=1)
        )
        trial = result.trials[0]
        assert trial.incomplete == 1  # the skipped write never completes
        assert trial.checks["regularity"].ok

    def test_with_schedule_stacks_on_scenario_policy(self):
        register_scenario(
            "skip-first-write-stacking",
            lambda t: Scenario(
                name="skip-first-write-stacking",
                fault_plan=FaultPlan("none", 0, None),
                policy_factory=lambda: PlannedSchedulePolicy(
                    [PlannedSkip(op=1, objects=(1, 2))]
                ),
            ),
            overwrite=True,
        )
        result = (
            Cluster("fast-regular", t=1, S=4)
            .with_scenario("skip-first-write-stacking")
            .with_operations([("write", "v1", 0), ("read", 1, 120)])
            .with_schedule(PlannedSkip(op=2, objects=(4,), withhold_replies=True))
            .check("regularity")
            .run(trials=1)
        )
        trial = result.trials[0]
        # Both layers bite: the scenario starves the write, the stacked rule
        # silences s4's replies to the read — which still completes on 3.
        assert trial.incomplete == 1
        assert trial.checks["regularity"].ok

    def test_scenarios_without_policies_keep_default_fabric(self):
        backend = (
            Cluster("fast-regular", t=1).with_scenario("fault-free").build_backend()
        )
        assert not isinstance(backend.simulator.network.policy, PlannedSchedulePolicy)
