"""The ``k-atomic`` backend and the consistency spectrum, end to end.

The acceptance bar for the spectrum subsystem:

* every registered protocol's fault-free run has spectrum k = 1;
* the ``k-atomic(2)`` backend under a write-overlapping workload has
  spectrum exactly 2 — atomicity fails, 2-atomicity holds;
* the measured staleness never exceeds the configured bound − 1;
* everything — run payloads, verdicts, staleness distributions — is
  byte-identical across the event/batched engines and serial/parallel
  execution;
* the explorer refutes k-atomic(1) and certifies k-atomic(2) on the same
  bounded schedule space (the committed ``k1_violation.json`` witness).
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.api import Cluster, protocol_specs
from repro.consistency import atomicity_spectrum, bounded_stale_view, read_staleness
from repro.errors import ConfigurationError, SpecificationError
from repro.types import BOTTOM

#: The witness scenario: w2 overlaps the read, so the lagged view returns
#: the previous value while the schedule decides whether w2 is visible.
OVERLAP_OPS = [("write", "v1", 0), ("write", "v2", 30), ("read", 1, 31)]
#: The read strictly follows both writes, so the k-lag is observable.
LAGGED_OPS = [("write", "v1", 0), ("write", "v2", 30), ("read", 1, 40)]


def _spectrum_cluster(consistency="k-atomic(2)", **kwargs):
    return Cluster("abd", consistency=consistency, **kwargs)


class TestBoundedStaleView:
    def test_bound_one_is_identity(self):
        history = (
            Cluster("abd").with_workload(operations=6).run(trials=1, keep_history=True)
            .trials[0].history
        )
        assert bounded_stale_view(history, 1) is history

    def test_bound_must_be_positive(self):
        with pytest.raises(SpecificationError):
            bounded_stale_view(
                Cluster("abd").with_workload(operations=2)
                .run(trials=1, keep_history=True).trials[0].history,
                0,
            )


class TestSpectrum:
    @pytest.mark.parametrize(
        "protocol", [s.name for s in protocol_specs()]
    )
    def test_every_protocol_is_atomic_fault_free(self, protocol):
        """Spectrum k = 1 on every registered protocol's fault-free run.

        Regular/safe protocols still produce atomic histories without an
        adversary, so the whole registry sits at the bottom of the
        spectrum when nothing misbehaves.
        """
        result = (
            Cluster(protocol, t=1)
            .with_workload(operations=8, spacing=90)
            .run(trials=2, keep_history=True)
        )
        for trial in result.trials:
            assert atomicity_spectrum(trial.history) == 1, (protocol, trial.trial)

    def test_k_atomic_backend_has_spectrum_exactly_two(self):
        result = (
            _spectrum_cluster()
            .with_operations(LAGGED_OPS)
            .check("k-atomic(1)", "k-atomic(2)")
            .run(trials=1, keep_history=True)
        )
        trial = result.trials[0]
        assert not trial.checks["k-atomic(1)"].ok
        assert trial.checks["k-atomic(2)"].ok
        assert atomicity_spectrum(trial.history) == 2

    @pytest.mark.parametrize("bound", [1, 2, 4])
    def test_staleness_never_exceeds_the_bound(self, bound):
        result = (
            _spectrum_cluster(consistency=f"k-atomic({bound})")
            .with_workload(operations=14, spacing=25, reads=0.6)
            .check(f"k-atomic({bound})")
            .run(trials=3, keep_history=True)
        )
        assert result.ok
        for trial in result.trials:
            assert trial.staleness is not None
            assert trial.staleness["max"] <= bound - 1
            assert max(s for s in read_staleness(trial.history) if s is not None) \
                <= bound - 1

    def test_atomic_runs_record_no_staleness(self):
        result = Cluster("abd").with_workload(operations=6).run(trials=1)
        assert result.trials[0].staleness is None
        assert "staleness" not in result.trials[0].to_dict()


class TestParity:
    def _payload(self, engine, parallel=False):
        result = (
            _spectrum_cluster(engine=engine)
            .with_workload(operations=12, spacing=25)
            .check("k-atomic(2)")
            .run(trials=3, parallel=parallel, max_workers=2 if parallel else None)
        )
        payload = result.to_dict()
        payload.pop("engine", None)
        return json.dumps(payload, sort_keys=True)

    def test_engines_agree_byte_for_byte(self):
        assert self._payload("event") == self._payload("batched")

    def test_parallel_agrees_byte_for_byte(self):
        assert self._payload("event") == self._payload("event", parallel=True)


class TestShardedSpectrum:
    def test_per_key_staleness_under_skew(self):
        result = (
            Cluster("abd", consistency="k-atomic(3)", keys=4)
            .with_workload(operations=24, spacing=25, key_skew=1.2)
            .check("k-atomic(3)")
            .run(trials=1, keep_history=True)
        )
        assert result.ok
        trial = result.trials[0]
        assert trial.staleness["max"] <= 2
        per_key = trial.staleness["per_key"]
        assert len(per_key) == 4
        assert all(stats["max"] <= 2 for stats in per_key.values())
        verdict = trial.checks["k-atomic(3)"]
        assert verdict.per_key and all(verdict.per_key.values())
        assert verdict.model == "k-atomic(3)"


class TestRoutingAndErrors:
    def test_consistency_routes_single_onto_k_atomic_backend(self):
        cluster = _spectrum_cluster()
        result = cluster.with_workload(operations=4).run(trials=1)
        assert result.backend == "k-atomic"
        assert result.consistency == "k-atomic(2)"

    def test_k_atomic_backend_defaults_consistency(self):
        result = (
            Cluster("abd", backend="k-atomic")
            .with_workload(operations=4).run(trials=1)
        )
        assert result.consistency == "k-atomic(2)"

    def test_with_consistency_is_fluent(self):
        result = (
            Cluster("abd").with_consistency("k-atomic(3)")
            .with_workload(operations=4).run(trials=1)
        )
        assert result.consistency == "k-atomic(3)"
        assert result.backend == "k-atomic"

    def test_non_atomic_consistency_rejected_off_spectrum_backends(self):
        with pytest.raises(ConfigurationError):
            Cluster("mwmr-fast-regular", consistency="k-atomic(2)")
        with pytest.raises(ConfigurationError):
            Cluster("abd", backend="reconfig", consistency="k-atomic(2)")

    def test_atomic_payloads_unchanged(self):
        """Pre-spectrum runs emit no consistency field at all."""
        payload = Cluster("abd").with_workload(operations=4).run(trials=1).to_dict()
        assert "consistency" not in payload

    def test_check_k_requires_a_k_atomic_name(self):
        with pytest.raises(ConfigurationError):
            Cluster("abd").check("atomicity", k=2)


class TestExplorerSpectrum:
    def test_refutes_k1_and_certifies_k2_on_the_same_space(self):
        base = _spectrum_cluster().with_operations(OVERLAP_OPS)
        refutation = base.check("k-atomic(1)").explore(max_holds=2)
        assert refutation.witnesses, "expected a 1-atomicity violation"
        witness = refutation.witnesses[0]
        assert witness.failures[0][0] == "k-atomic(1)"
        assert witness.probe.consistency == "k-atomic(2)"
        certification = base.check("k-atomic(2)").explore(max_holds=2)
        assert not certification.witnesses
        assert certification.exhausted
        # Same protocol, workload and bounds ⇒ the certified space is the
        # refuted one: identical hold-link alphabet on both passes.
        assert certification.alphabet == refutation.alphabet


class TestCliSpectrum:
    def test_list_checkers(self, capsys):
        assert main(["list-checkers"]) == 0
        out = capsys.readouterr().out
        assert "k-atomic" in out and "bounded-stale" in out and "atomicity" in out

    def test_run_check_model_k_atomic(self, capsys):
        assert main([
            "run", "--protocol", "abd", "--consistency", "k-atomic(2)",
            "--check-model", "k-atomic", "--k", "2",
            "--trials", "1", "--ops", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "k-atomic(2):ok" in out and "consistency=k-atomic(2)" in out

    def test_run_check_model_atomic_fails_on_stale_backend(self, capsys):
        assert main([
            "run", "--protocol", "abd", "--consistency", "k-atomic(2)",
            "--check-model", "atomic", "--trials", "1", "--ops", "8",
            "--spacing", "25",
        ]) == 1
        assert "atomicity FAILED" in capsys.readouterr().out

    def test_k_without_k_atomic_exits_2(self, capsys):
        assert main(["run", "--protocol", "abd", "--k", "3", "--trials", "1"]) == 2
        assert "--k has no effect" in capsys.readouterr().err

    def test_compare_keys_on_consistency(self, tmp_path, capsys):
        atomic, stale = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["run", "--protocol", "abd", "--trials", "1", "--ops", "4",
                     "--jsonl", str(atomic)]) == 0
        assert main(["run", "--protocol", "abd", "--consistency", "k-atomic(2)",
                     "--check-model", "k-atomic", "--trials", "1", "--ops", "4",
                     "--jsonl", str(stale)]) == 0
        capsys.readouterr()
        assert main(["compare", str(atomic), str(stale)]) == 0
        out = capsys.readouterr().out
        assert "compared 0 run(s)" in out  # models never match as like-for-like

    def test_explore_refutes_k1_via_cli(self, tmp_path, capsys):
        witness = tmp_path / "k1.json"
        assert main([
            "explore", "--protocol", "abd", "--consistency", "k-atomic(2)",
            "--check-model", "k-atomic", "--k", "1",
            "--ops", "3", "--reads", "0.4", "--spacing", "30",
            "--max-holds", "2", "--witness", str(witness), "--expect-violation",
        ]) == 0
        capsys.readouterr()
        assert main(["replay", str(witness)]) == 0
        assert "reproduced byte-identically" in capsys.readouterr().out
