"""Unit tests for the SWMR atomicity checker (paper §2.2, properties 1–4)."""

import pytest

from repro.errors import SpecificationError
from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.history import History, OperationRecord
from repro.types import BOTTOM, fresh_operation_id, reader_id, writer_id


class HistoryBuilder:
    """Small DSL: steps are assigned in call order."""

    def __init__(self):
        self.records = []
        self._step = 0

    def _next(self):
        self._step += 1
        return self._step

    def write(self, value, complete=True):
        inv = self._next()
        resp = self._next() if complete else None
        self.records.append(OperationRecord(
            op_id=fresh_operation_id(writer_id(), "write"), kind="write",
            client=writer_id(), invoked_at=inv, invocation_step=inv,
            value=value, responded_at=resp, response_step=resp,
        ))
        return self

    def read(self, reader, returns, inv=None, resp=None):
        inv_step = inv if inv is not None else self._next()
        resp_step = resp if resp is not None else self._next()
        self._step = max(self._step, inv_step, resp_step or 0)
        self.records.append(OperationRecord(
            op_id=fresh_operation_id(reader_id(reader), "read"), kind="read",
            client=reader_id(reader), invoked_at=inv_step, invocation_step=inv_step,
            value=returns, responded_at=resp_step, response_step=resp_step,
        ))
        return self

    def history(self):
        return History(self.records)


class TestValidHistories:
    def test_empty_history_is_atomic(self):
        assert check_swmr_atomicity(History([])).ok

    def test_sequential_write_then_read(self):
        verdict = check_swmr_atomicity(
            HistoryBuilder().write("a").read(1, "a").history()
        )
        assert verdict.ok
        assert list(verdict.assignment.values()) == [1]

    def test_read_of_initial_bottom(self):
        assert check_swmr_atomicity(HistoryBuilder().read(1, BOTTOM).history()).ok

    def test_concurrent_read_may_return_either(self):
        # write [1,4], read [2,3] concurrent: may return ⊥ or the new value.
        for value in (BOTTOM, "a"):
            builder = HistoryBuilder()
            builder.records.append(OperationRecord(
                op_id=fresh_operation_id(writer_id(), "write"), kind="write",
                client=writer_id(), invoked_at=1, invocation_step=1,
                value="a", responded_at=4, response_step=4,
            ))
            builder.read(1, value, inv=2, resp=3)
            assert check_swmr_atomicity(builder.history()).ok, value

    def test_read_of_incomplete_write_allowed(self):
        verdict = check_swmr_atomicity(
            HistoryBuilder().write("a", complete=False).read(1, "a").history()
        )
        assert verdict.ok

    def test_two_readers_agree_on_order(self):
        history = (
            HistoryBuilder().write("a").write("b")
            .read(1, "b").read(2, "b").history()
        )
        assert check_swmr_atomicity(history).ok

    def test_duplicate_written_values_resolved(self):
        # Both writes store "a": a read after both can be assigned either.
        history = HistoryBuilder().write("a").write("a").read(1, "a").history()
        assert check_swmr_atomicity(history).ok


class TestProperty1Validity:
    def test_unwritten_value_rejected(self):
        verdict = check_swmr_atomicity(HistoryBuilder().write("a").read(1, "z").history())
        assert not verdict.ok
        assert verdict.violated_property == 1

    def test_unwritten_value_with_no_writes(self):
        verdict = check_swmr_atomicity(HistoryBuilder().read(1, "ghost").history())
        assert verdict.violated_property == 1

    def test_unhashable_read_value_rejected_not_crashed(self):
        # The candidate index is only a prefilter; unhashable values must
        # still produce a property-1 verdict, not a TypeError.
        verdict = check_swmr_atomicity(
            HistoryBuilder().write("a").read(1, ["unhashable"]).history()
        )
        assert not verdict.ok
        assert verdict.violated_property == 1

    def test_unhashable_write_values_still_checked(self):
        builder = HistoryBuilder().write(["x"])
        builder.read(1, ["x"])
        assert check_swmr_atomicity(builder.history()).ok

    def test_nan_read_matches_no_write(self):
        # Candidacy is defined by ``==`` (as in every other spec checker),
        # not by dict-lookup identity: NaN equals nothing, including itself.
        nan = float("nan")
        verdict = check_swmr_atomicity(HistoryBuilder().write(nan).read(1, nan).history())
        assert not verdict.ok
        assert verdict.violated_property == 1


class TestProperty2Freshness:
    def test_stale_read_rejected(self):
        verdict = check_swmr_atomicity(
            HistoryBuilder().write("a").write("b").read(1, "a").history()
        )
        assert not verdict.ok
        assert verdict.violated_property == 2

    def test_bottom_after_complete_write_rejected(self):
        verdict = check_swmr_atomicity(
            HistoryBuilder().write("a").read(1, BOTTOM).history()
        )
        assert not verdict.ok
        assert verdict.violated_property == 2


class TestProperty3NoFutureReads:
    def test_read_before_write_invoked_rejected(self):
        builder = HistoryBuilder()
        builder.read(1, "a", inv=1, resp=2)
        builder.write("a")
        verdict = check_swmr_atomicity(builder.history())
        assert not verdict.ok
        assert verdict.violated_property == 3


class TestProperty4Monotonicity:
    def test_new_old_inversion_rejected(self):
        # Writes a, b (both complete, concurrent with nothing); rd1 returns b,
        # then rd2 (succeeding rd1) returns a: inversion.
        builder = HistoryBuilder()
        builder.write("a")          # steps 1,2
        builder.records.append(OperationRecord(
            op_id=fresh_operation_id(writer_id(), "write"), kind="write",
            client=writer_id(), invoked_at=3, invocation_step=3,
            value="b", responded_at=20, response_step=20,
        ))
        builder._step = 20
        builder.read(1, "b", inv=4, resp=5)
        builder.read(2, "a", inv=6, resp=7)
        verdict = check_swmr_atomicity(builder.history())
        assert not verdict.ok
        assert verdict.violated_property == 4

    def test_concurrent_reads_unconstrained(self):
        # Same shape but the reads overlap: both values acceptable.
        builder = HistoryBuilder()
        builder.write("a")
        builder.records.append(OperationRecord(
            op_id=fresh_operation_id(writer_id(), "write"), kind="write",
            client=writer_id(), invoked_at=3, invocation_step=3,
            value="b", responded_at=20, response_step=20,
        ))
        builder._step = 20
        builder.read(1, "b", inv=4, resp=6)
        builder.read(2, "a", inv=5, resp=7)  # overlaps rd1
        assert check_swmr_atomicity(builder.history()).ok


class TestCheckerInterface:
    def test_multi_writer_rejected(self):
        from repro.types import ProcessId

        other_writer = ProcessId("writer", 9)
        records = [
            OperationRecord(
                op_id=fresh_operation_id(writer_id(), "write"), kind="write",
                client=writer_id(), invoked_at=1, invocation_step=1,
                value="a", responded_at=2, response_step=2,
            ),
            OperationRecord(
                op_id=fresh_operation_id(other_writer, "write"), kind="write",
                client=other_writer, invoked_at=3, invocation_step=3,
                value="b", responded_at=4, response_step=4,
            ),
        ]
        with pytest.raises(SpecificationError):
            check_swmr_atomicity(History(records))

    def test_verdict_truthiness(self):
        verdict = check_swmr_atomicity(History([]))
        assert bool(verdict) is True

    def test_explanation_names_culprit_value(self):
        verdict = check_swmr_atomicity(HistoryBuilder().write("a").read(1, "z").history())
        assert "'z'" in verdict.explanation
