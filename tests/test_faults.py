"""Unit tests for fault behaviours and adversarial schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import CrashAt, SilentBehavior, flaky_behavior
from repro.faults.byzantine import (
    FabricatingBehavior,
    ReplayBehavior,
    StaleEchoBehavior,
    StateArchive,
)
from repro.faults.schedules import BlockSkipPolicy, SkipRule, WithholdFrom
from repro.registers.abd import STORE, AbdObjectHandler, QUERY
from repro.sim.network import Message
from repro.sim.process import ObjectServer
from repro.types import TaggedValue, Timestamp, fresh_operation_id, object_id, reader_id, writer_id


def query_message(round_no=1):
    return Message(
        src=reader_id(1),
        dst=object_id(1),
        op=fresh_operation_id(reader_id(1), "read"),
        round_no=round_no,
        tag=QUERY,
        payload={},
    )


def store_message(seq, value):
    return Message(
        src=writer_id(),
        dst=object_id(1),
        op=fresh_operation_id(writer_id(), "write"),
        round_no=1,
        tag=STORE,
        payload={"tv": TaggedValue(Timestamp(seq), value)},
    )


def make_server(behavior=None):
    return ObjectServer(pid=object_id(1), handler=AbdObjectHandler(), behavior=behavior)


class TestBenignBehaviors:
    def test_silent_never_replies(self):
        server = make_server(SilentBehavior())
        assert server.receive(query_message()) is None

    def test_silent_still_applies_state(self):
        server = make_server(SilentBehavior())
        server.receive(store_message(1, "x"))
        assert server.state["tv"].value == "x"

    def test_crash_at_replies_then_stops(self):
        server = make_server(CrashAt(survive_messages=2))
        assert server.receive(query_message()) is not None
        assert server.receive(query_message()) is not None
        assert server.receive(query_message()) is None

    def test_crash_at_zero_is_silent(self):
        server = make_server(CrashAt(survive_messages=0))
        assert server.receive(query_message()) is None

    def test_crash_at_rejects_negative(self):
        with pytest.raises(ValueError):
            CrashAt(survive_messages=-1)

    def test_flaky_deterministic_per_seed(self):
        a = make_server(flaky_behavior(p_reply=0.5, seed=9))
        b = make_server(flaky_behavior(p_reply=0.5, seed=9))
        pattern_a = [a.receive(query_message()) is None for _ in range(20)]
        pattern_b = [b.receive(query_message()) is None for _ in range(20)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_flaky_validates_probability(self):
        with pytest.raises(ValueError):
            flaky_behavior(p_reply=1.5)


class TestStateArchive:
    def test_capture_and_get_are_deep_copies(self):
        server = make_server()
        server.receive(store_message(1, "x"))
        archive = StateArchive()
        archive.capture("sigma1", [server])
        server.receive(store_message(2, "y"))
        snapshot = archive.get("sigma1", server.pid)
        assert snapshot["tv"].value == "x"

    def test_missing_snapshot_raises(self):
        archive = StateArchive()
        with pytest.raises(ConfigurationError):
            archive.get("nope", object_id(1))

    def test_has_and_labels(self):
        archive = StateArchive()
        archive.store("a", object_id(1), {"k": 1})
        assert archive.has("a")
        assert archive.has("a", object_id(1))
        assert not archive.has("a", object_id(2))
        assert archive.labels() == ("a",)


class TestReplayBehavior:
    def test_forges_from_snapshot_on_match(self):
        server = make_server()
        server.receive(store_message(1, "old"))
        archive = StateArchive()
        archive.capture("old", [server])
        server.receive(store_message(2, "new"))
        server.behavior = ReplayBehavior(archive).forge(
            matcher=lambda m: m.tag == QUERY, label="old"
        )
        reply = server.receive(query_message())
        assert reply["tv"].value == "old"

    def test_honest_when_no_rule_matches(self):
        server = make_server()
        server.receive(store_message(1, "x"))
        server.behavior = ReplayBehavior(StateArchive())
        reply = server.receive(query_message())
        assert reply["tv"].value == "x"

    def test_silent_when_snapshot_missing(self):
        server = make_server(
            ReplayBehavior(StateArchive()).forge(lambda m: True, "ghost")
        )
        assert server.receive(query_message()) is None

    def test_forged_reply_does_not_corrupt_live_state(self):
        server = make_server()
        server.receive(store_message(2, "live"))
        archive = StateArchive()
        archive.store("zero", server.pid, {"tv": TaggedValue.initial()})
        server.behavior = ReplayBehavior(archive).forge(lambda m: m.tag == QUERY, "zero")
        server.receive(query_message())
        assert server.state["tv"].value == "live"


class TestStaleEcho:
    def test_echoes_frozen_state_forever(self):
        server = make_server()
        server.receive(store_message(1, "frozen"))
        server.behavior = StaleEchoBehavior.freezing(server)
        server.receive(store_message(2, "newer"))
        reply = server.receive(query_message())
        assert reply["tv"].value == "frozen"

    def test_empty_freeze_means_initial_state(self):
        server = make_server(StaleEchoBehavior(frozen_state={}))
        server.receive(store_message(1, "x"))
        reply = server.receive(query_message())
        assert reply["tv"] == TaggedValue.initial()


class TestFabrication:
    def test_default_fabricator_inflates_timestamps(self):
        server = make_server(FabricatingBehavior())
        server.receive(store_message(3, "real"))
        reply = server.receive(query_message())
        assert reply["tv"].ts.seq > 1_000_000
        assert reply["tv"].value == "<fabricated>"

    def test_custom_fabricator(self):
        server = make_server(
            FabricatingBehavior(lambda m, honest: {"tv": TaggedValue(Timestamp(99), "evil")})
        )
        reply = server.receive(query_message())
        assert reply["tv"].value == "evil"

    def test_fabricator_may_choose_silence(self):
        server = make_server(FabricatingBehavior(lambda m, honest: None))
        assert server.receive(query_message()) is None


class TestSchedules:
    def test_skip_rule_matches_invocations_only(self):
        op = fresh_operation_id(reader_id(1), "read")
        rule = SkipRule(op=op, objects=frozenset({object_id(1)}), round_no=1)
        invocation = Message(
            src=reader_id(1), dst=object_id(1), op=op, round_no=1, tag="Q", payload={}
        )
        reply = Message(
            src=object_id(1), dst=reader_id(1), op=op, round_no=1, tag="Q",
            payload={}, is_reply=True,
        )
        assert rule.matches(invocation)
        assert not rule.matches(reply)

    def test_block_skip_policy_holds_matches(self):
        op = fresh_operation_id(reader_id(1), "read")
        policy = BlockSkipPolicy().skip(op, [object_id(2)], round_no=1)
        held = Message(src=reader_id(1), dst=object_id(2), op=op, round_no=1, tag="Q", payload={})
        passed = Message(src=reader_id(1), dst=object_id(3), op=op, round_no=1, tag="Q", payload={})
        assert policy.delay(held, 0) is None
        assert policy.delay(passed, 0) == 1

    def test_skip_all_rounds_when_round_none(self):
        op = fresh_operation_id(reader_id(1), "read")
        policy = BlockSkipPolicy().skip(op, [object_id(1)])
        for round_no in (1, 2, 3):
            msg = Message(src=reader_id(1), dst=object_id(1), op=op, round_no=round_no, tag="Q", payload={})
            assert policy.delay(msg, 0) is None

    def test_withhold_from_targets_replies(self):
        policy = WithholdFrom(objects=[object_id(1)])
        op = fresh_operation_id(reader_id(1), "read")
        reply = Message(src=object_id(1), dst=reader_id(1), op=op, round_no=1, tag="Q",
                        payload={}, is_reply=True)
        other = Message(src=object_id(2), dst=reader_id(1), op=op, round_no=1, tag="Q",
                        payload={}, is_reply=True)
        assert policy.delay(reply, 0) is None
        assert policy.delay(other, 0) == 1

    def test_withhold_from_specific_clients_only(self):
        policy = WithholdFrom(objects=[object_id(1)], clients=[reader_id(2)])
        op = fresh_operation_id(reader_id(1), "read")
        to_r1 = Message(src=object_id(1), dst=reader_id(1), op=op, round_no=1, tag="Q",
                        payload={}, is_reply=True)
        to_r2 = Message(src=object_id(1), dst=reader_id(2), op=op, round_no=1, tag="Q",
                        payload={}, is_reply=True)
        assert policy.delay(to_r1, 0) == 1
        assert policy.delay(to_r2, 0) is None
