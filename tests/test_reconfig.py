"""The reconfigurable backend: membership epochs, repair, and churn faults.

Covers the PR's acceptance criteria end to end:

* a repair is an ordinary two-round client operation (transfer read +
  install) whose rounds are accounted separately from reads and writes;
* a rolling-replacement churn run — every original object replaced once
  while client operations keep flowing — completes with an atomic verdict
  and **byte-identical** results across both engines and serial/parallel;
* the explorer certifies quorum state transfer at small bounds and refutes
  the under-quorum variant with a minimized, replayable witness;
* the churn fault family (perm-crash, flap, rolling-replace) and the
  recovery scenarios (rolling-restart, crash-storm) behave identically on
  both engines, and their configuration errors fire parent-side.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import Cluster, fault_spec
from repro.errors import ConfigurationError
from repro.sim.batched import ENGINES
from repro.sim.tracing import trace_fingerprint
from repro.types import scoped_operation_serials

pytestmark = pytest.mark.filterwarnings("error")


def churn_cluster(engine="event"):
    """The acceptance-run shape: every original member replaced once.

    rolling-replace kills s1 after 4 deliveries, s2 after 12, s3 after 20;
    the repairs retire each dead member in sequence while nine client
    operations keep flowing.  ``allow_overfault`` is required because all
    three originals misbehave over the run (staggered, so at most t=1 is
    down at any instant).
    """
    return (
        Cluster("abd", t=1, S=3, backend="reconfig", engine=engine,
                allow_overfault=True)
        .with_faults("rolling-replace", count=3, base=4, stagger=8)
        .with_repairs((1, 40), (2, 110), (3, 180))
        .with_workload(operations=9, reads=0.5, spacing=30)
        .check("atomicity")
    )


def explore_base():
    """The certify/refute pair's shared configuration.

    s1 permanently crashes after one delivery; the repair at time 5
    replaces it.  With the default transfer quorum (S - t = 2) the state
    transfer must see a surviving member that stored the write; with
    ``xfer_quorum=1`` it may read only the crashed-then-replaced member's
    blank spare and resurrect ⊥.
    """
    return (
        Cluster("abd", t=1, S=3, backend="reconfig")
        .with_faults("perm-crash", survive_messages=1)
        .with_operations([("write", "v1", 0), ("read", 1, 12)])
        .check("atomicity")
    )


class TestRepairMechanics:
    def test_repair_is_two_rounds_and_flips_the_epoch(self):
        cluster = (
            Cluster("abd", t=1, S=3, backend="reconfig")
            .with_operations([("write", "v1", 0), ("read", 1, 12)])
            .with_repairs((1, 5))
            .check("atomicity")
        )
        result = cluster.run(trials=1, seed=0, keep_history=True)
        assert result.ok and result.incomplete == 0
        assert result.trials[0].repair_rounds == [2]

    def test_epoch_advances_and_reads_survive_replacement(self):
        backend = (
            Cluster("abd", t=1, S=3, backend="reconfig")
            .with_repairs((1, 5))
            .build_backend()
        )
        system = backend.system
        assert system.epoch == 0
        assert [str(pid) for pid in system.members] == ["s1", "s2", "s3"]
        from repro.workloads.generator import OperationPlan

        backend.schedule(OperationPlan(kind="write", client_index=0,
                                       value="v1", at=0))
        backend.schedule(OperationPlan(kind="read", client_index=1,
                                       value=None, at=12))
        backend.run()
        assert system.epoch == 1
        assert [str(pid) for pid in system.members] == ["s4", "s2", "s3"]
        assert system.completed_repairs == 1

    def test_history_excludes_repair_operations(self):
        cluster = (
            Cluster("abd", t=1, S=3, backend="reconfig")
            .with_operations([("write", "v1", 0), ("read", 1, 12)])
            .with_repairs((1, 5))
            .check("atomicity")
        )
        result = cluster.run(trials=1, seed=0, keep_history=True)
        kinds = {record.op_id.kind for record in result.trials[0].history.records}
        assert kinds == {"write", "read"}  # repairs never enter the checked history

    def test_repair_rounds_serialized_only_when_present(self):
        churn = churn_cluster().run(trials=1, seed=3)
        assert churn.trials[0].to_dict()["repair_rounds"] == [2, 2, 2]
        plain = (
            Cluster("abd", t=1)
            .with_workload(operations=3)
            .check("atomicity")
            .run(trials=1, seed=0)
        )
        assert "repair_rounds" not in plain.trials[0].to_dict()


class TestChurnAcceptanceRun:
    def test_rolling_replacement_is_atomic_on_both_engines(self):
        results = {}
        for engine in ENGINES:
            result = churn_cluster(engine).run(trials=2, seed=3)
            assert result.ok, f"{engine}: {result.failures()}"
            assert result.incomplete == 0
            for trial in result.trials:
                assert trial.repair_rounds == [2, 2, 2]
            payload = result.to_dict()
            payload.pop("engine", None)
            results[engine] = payload
        assert results["event"] == results["batched"]

    def test_serial_and_parallel_runs_are_byte_identical(self):
        serial = churn_cluster().run(trials=3, seed=3, parallel=False)
        pooled = churn_cluster().run(trials=3, seed=3, parallel=True,
                                     max_workers=2)
        assert serial.to_dict() == pooled.to_dict()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_wire_trace_fingerprints_match_across_engines(self, engine):
        with scoped_operation_serials():
            result = churn_cluster(engine).run(trials=1, seed=3,
                                               keep_trace=True)
        fingerprint = trace_fingerprint(result.trials[0].trace)
        if not hasattr(type(self), "_seen"):
            type(self)._seen = {}
        type(self)._seen[engine] = fingerprint
        if len(type(self)._seen) == len(ENGINES):
            values = set(type(self)._seen.values())
            assert len(values) == 1, type(self)._seen


class TestExploreCertifiesRepair:
    def test_quorum_transfer_is_certified_at_small_bounds(self):
        result = explore_base().with_repairs((1, 5)).explore(max_holds=1)
        assert result.certified
        assert not result.witnesses

    def test_under_quorum_transfer_is_refuted_with_a_witness(self):
        result = (
            explore_base()
            .with_repairs((1, 5), xfer_quorum=1)
            .explore(max_holds=1)
        )
        assert not result.certified
        assert len(result.witnesses) == 1
        witness = result.witnesses[0]
        assert len(witness.decisions) == 1  # minimized to a single held link
        assert witness.failures[0][0] == "atomicity"
        assert "stale read" in witness.failures[0][1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_refutation_witness_replays_on_engine(self, engine):
        result = (
            explore_base()
            .with_repairs((1, 5), xfer_quorum=1)
            .explore(max_holds=1)
        )
        witness = result.witnesses[0]
        witness = dataclasses.replace(
            witness, probe=dataclasses.replace(witness.probe, engine=engine)
        )
        assert witness.reproduces()


class TestReconfigValidation:
    def test_repairs_need_the_reconfig_backend(self):
        with pytest.raises(ConfigurationError, match="reconfig backend"):
            Cluster("abd", t=1).with_repairs((1, 5))

    def test_member_index_out_of_range(self):
        with pytest.raises(ConfigurationError, match="member"):
            (Cluster("abd", t=1, S=3, backend="reconfig")
             .with_operations([("write", "v", 0)])
             .with_repairs((4, 5))
             .check("atomicity").run(trials=1, seed=0))

    def test_duplicate_member_rejected(self):
        with pytest.raises(ConfigurationError, match="at most once"):
            (Cluster("abd", t=1, S=3, backend="reconfig")
             .with_operations([("write", "v", 0)])
             .with_repairs((1, 5), (1, 25))
             .check("atomicity").run(trials=1, seed=0))

    def test_spares_must_cover_repairs(self):
        with pytest.raises(ConfigurationError, match="spare"):
            (Cluster("abd", t=1, S=3, backend="reconfig")
             .with_operations([("write", "v", 0)])
             .with_repairs((1, 5), (2, 25), spares=1)
             .check("atomicity").run(trials=1, seed=0))

    def test_xfer_quorum_bounds(self):
        with pytest.raises(ConfigurationError, match="xfer_quorum"):
            (Cluster("abd", t=1, S=3, backend="reconfig")
             .with_operations([("write", "v", 0)])
             .with_repairs((1, 5), xfer_quorum=4)
             .check("atomicity").run(trials=1, seed=0))

    def test_non_transferable_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="not reconfigurable"):
            (Cluster("fast-regular", t=1, backend="reconfig")
             .with_operations([("write", "v", 0)])
             .with_repairs((1, 5))
             .check("regularity").run(trials=1, seed=0))

    def test_keyed_plans_rejected(self):
        from repro.workloads.generator import OperationPlan

        backend = (
            Cluster("abd", t=1, S=3, backend="reconfig")
            .with_repairs((1, 5))
            .build_backend()
        )
        with pytest.raises(ConfigurationError, match="sharded"):
            backend.schedule(OperationPlan(kind="write", client_index=0,
                                           value="v", at=0, key="hot"))


class TestChurnFaults:
    def test_perm_crash_needs_no_durability(self):
        result = (
            Cluster("abd", t=1, S=3)
            .with_faults("perm-crash", survive_messages=1)
            .with_workload(operations=6, spacing=30)
            .check("atomicity")
            .run(trials=2, seed=1)
        )
        assert result.ok and result.incomplete == 0

    @pytest.mark.parametrize("scenario", ["rolling-restart", "crash-storm"])
    def test_recovery_scenarios_match_across_engines(self, scenario):
        payloads = {}
        for engine in ENGINES:
            result = (
                Cluster("abd", t=1, S=3, engine=engine, durability="mem")
                .with_scenario(scenario)
                .with_workload(operations=8, spacing=25)
                .check("atomicity")
                .run(trials=2, seed=5)
            )
            assert result.ok, f"{scenario}/{engine}: {result.failures()}"
            payload = result.to_dict()
            payload.pop("engine", None)
            payloads[engine] = payload
        assert payloads["event"] == payloads["batched"]

    @pytest.mark.parametrize("scenario", ["rolling-restart", "crash-storm"])
    def test_recovery_scenarios_require_durability(self, scenario):
        cluster = (
            Cluster("abd", t=1, S=3)
            .with_scenario(scenario)
            .with_workload(operations=4)
            .check("atomicity")
        )
        with pytest.raises(ConfigurationError, match="durability"):
            cluster.run(trials=1, seed=0)
        with pytest.raises(ConfigurationError, match="durability"):
            cluster.explore(max_holds=1)

    def test_flap_restabilises_after_cycles(self):
        result = (
            Cluster("abd", t=1, S=3, durability="mem")
            .with_faults("flap", survive_messages=2, rejoin_after=1, cycles=2)
            .with_workload(operations=8, spacing=25)
            .check("atomicity")
            .run(trials=2, seed=7)
        )
        assert result.ok and result.incomplete == 0


class TestFaultArgValidation:
    def test_unknown_fault_arg_raises_parent_side(self):
        with pytest.raises(ConfigurationError,
                           match="accepted: survive_messages"):
            Cluster("abd", t=1).with_faults("perm-crash", survive=1)

    def test_fault_spec_params_enumerates_maker_signature(self):
        assert fault_spec("perm-crash").params() == {"survive_messages": 3}
        assert fault_spec("rolling-replace").params() == {"base": 3,
                                                          "stagger": 6}
        assert fault_spec("flap").params() == {
            "survive_messages": 2, "rejoin_after": 1, "cycles": 2,
        }
        assert fault_spec("silent").params() == {}

    def test_params_serialized_in_to_dict(self):
        payload = fault_spec("perm-crash").to_dict()
        assert payload["params"] == {"survive_messages": 3}


class TestReconfigCli:
    def test_run_with_repairs(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--backend", "reconfig",
            "--allow-overfault",
            "--faults", "rolling-replace", "--count", "3",
            "--fault-arg", "base=4", "--fault-arg", "stagger=8",
            "--repair", "1@40", "--repair", "2@110", "--repair", "3@180",
            "--ops", "9", "--reads", "0.5", "--spacing", "30",
            "--trials", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "atomicity:ok" in out

    def test_run_scenario_flag(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--scenario", "crash-storm",
            "--durability", "mem", "--ops", "6", "--trials", "1",
        ]) == 0
        assert "atomicity:ok" in capsys.readouterr().out

    def test_repair_flag_parse_error(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--backend", "reconfig",
            "--repair", "1:40",
        ]) == 2
        assert "MEMBER@AT" in capsys.readouterr().err

    def test_spares_without_repair_rejected(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--backend", "reconfig",
            "--spares", "2",
        ]) == 2
        assert "--repair" in capsys.readouterr().err

    def test_list_faults_shows_params(self, capsys):
        from repro.__main__ import main

        assert main(["list-faults"]) == 0
        out = capsys.readouterr().out
        assert "perm-crash" in out and "rolling-replace" in out
        assert "survive_messages=3" in out
        assert "base=3, stagger=6" in out

    def test_explore_refutes_under_quorum_via_cli(self, capsys):
        from repro.__main__ import main

        argv = [
            "explore", "--protocol", "abd", "--backend", "reconfig",
            "--faults", "perm-crash", "--fault-arg", "survive_messages=1",
            "--repair", "1@5", "--ops", "2", "--reads", "0.5",
            "--spacing", "10", "--seed", "7", "--max-holds", "1",
        ]
        assert main(argv) == 0  # quorum transfer: certified
        assert "CERTIFIED" in capsys.readouterr().out
        assert main(argv + ["--xfer-quorum", "1", "--expect-violation"]) == 0
        assert "stale read" in capsys.readouterr().out
