"""Unit tests for channels, delivery policies, and message holding."""

import pytest

from repro.errors import ChannelError
from repro.sim.events import EventQueue
from repro.sim.network import (
    FifoDelivery,
    Message,
    Network,
    RandomDelivery,
    SelectiveHold,
    broadcast,
)
from repro.types import fresh_operation_id, object_id, object_ids, reader_id


def make_message(dst_index=1, tag="PING", is_reply=False, src=None):
    return Message(
        src=src or reader_id(1),
        dst=object_id(dst_index),
        op=fresh_operation_id(reader_id(1), "read"),
        round_no=1,
        tag=tag,
        payload={},
        is_reply=is_reply,
    )


class TestFifoDelivery:
    def test_unit_latency_default(self):
        assert FifoDelivery().delay(make_message(), 0) == 1

    def test_rejects_zero_latency(self):
        with pytest.raises(ChannelError):
            FifoDelivery(latency=0)


class TestRandomDelivery:
    def test_deterministic_per_seed(self):
        a = RandomDelivery(seed=7)
        b = RandomDelivery(seed=7)
        msgs = [make_message() for _ in range(20)]
        assert [a.delay(m, 0) for m in msgs] == [b.delay(m, 0) for m in msgs]

    def test_within_bounds(self):
        policy = RandomDelivery(seed=1, min_latency=2, max_latency=5)
        for _ in range(50):
            assert 2 <= policy.delay(make_message(), 0) <= 5

    def test_rejects_bad_bounds(self):
        with pytest.raises(ChannelError):
            RandomDelivery(min_latency=5, max_latency=2)


class TestNetworkDelivery:
    def test_delivers_to_attached_handler(self):
        queue = EventQueue()
        network = Network(queue)
        received = []
        network.attach(object_id(1), received.append)
        network.send(make_message())
        queue.run_all()
        assert len(received) == 1

    def test_fifo_per_channel_under_random_delays(self):
        queue = EventQueue()
        network = Network(queue, policy=RandomDelivery(seed=3, max_latency=20))
        received = []
        network.attach(object_id(1), lambda m: received.append(m.tag))
        for i in range(10):
            network.send(make_message(tag=f"m{i}"))
        queue.run_all()
        assert received == [f"m{i}" for i in range(10)]

    def test_drop_for_detached_destination(self):
        queue = EventQueue()
        network = Network(queue)
        network.attach(object_id(1), lambda m: None)
        network.detach(object_id(1))
        network.send(make_message())
        queue.run_all()  # no exception: dropped silently (crashed client)

    def test_broadcast_counts(self):
        queue = EventQueue()
        network = Network(queue)
        received = []
        for pid in object_ids(4):
            network.attach(pid, received.append)
        count = broadcast(
            network,
            reader_id(1),
            object_ids(4),
            fresh_operation_id(reader_id(1), "read"),
            1,
            "PING",
            {},
        )
        queue.run_all()
        assert count == 4
        assert len(received) == 4


class TestHolding:
    def test_selective_hold_parks_messages(self):
        queue = EventQueue()
        network = Network(queue, policy=SelectiveHold(lambda m: m.tag == "SLOW"))
        received = []
        network.attach(object_id(1), lambda m: received.append(m.tag))
        network.send(make_message(tag="SLOW"))
        network.send(make_message(tag="FAST"))
        queue.run_all()
        assert received == ["FAST"]
        assert len(network.held_messages) == 1

    def test_release_held_delivers(self):
        queue = EventQueue()
        network = Network(queue, policy=SelectiveHold(lambda m: True))
        received = []
        network.attach(object_id(1), lambda m: received.append(m.tag))
        network.send(make_message(tag="a"))
        queue.run_all()
        assert received == []
        assert network.release_held() == 1
        queue.run_all()
        assert received == ["a"]
        assert network.held_messages == ()

    def test_release_with_filter(self):
        queue = EventQueue()
        network = Network(queue, policy=SelectiveHold(lambda m: True))
        received = []
        network.attach(object_id(1), lambda m: received.append(m.tag))
        network.send(make_message(tag="x"))
        network.send(make_message(tag="y"))
        assert network.release_held(match=lambda m: m.tag == "y") == 1
        queue.run_all()
        assert received == ["y"]

    def test_release_preserves_channel_fifo(self):
        queue = EventQueue()
        network = Network(queue, policy=SelectiveHold(lambda m: True))
        received = []
        network.attach(object_id(1), lambda m: received.append(m.tag))
        for i in range(5):
            network.send(make_message(tag=f"m{i}"))
        network.release_held()
        queue.run_all()
        assert received == [f"m{i}" for i in range(5)]
