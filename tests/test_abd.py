"""Tests for the ABD register emulations (crash model baseline)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import CrashAt, SilentBehavior
from repro.registers.abd import AbdProtocol, MultiWriterAbdProtocol
from repro.registers.base import ProtocolContext, RegisterSystem
from repro.sim.network import RandomDelivery
from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.linearizability import is_linearizable
from repro.types import object_id, object_ids


def make_system(t=1, n_readers=2, behaviors=None, policy=None):
    return RegisterSystem(
        AbdProtocol(), t=t, n_readers=n_readers, behaviors=behaviors, policy=policy
    )


class TestSequential:
    def test_read_after_write(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "a"
        assert check_swmr_atomicity(history).ok

    def test_read_before_any_write_returns_bottom(self):
        from repro.types import BOTTOM

        system = make_system()
        system.read(1, at=0)
        system.run()
        assert system.history().reads()[0].value == BOTTOM

    def test_write_one_round_read_two_rounds(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("write") == 1
        assert system.max_rounds("read") == 2

    def test_monotone_timestamps_across_writes(self):
        system = make_system()
        for i, at in enumerate([0, 40, 80]):
            system.write(f"v{i}", at=at)
        system.read(1, at=150)
        system.run()
        assert system.history().reads()[0].value == "v2"

    def test_default_size_is_2t_plus_1(self):
        system = make_system(t=2)
        assert system.ctx.S == 5


class TestFaultTolerance:
    def test_tolerates_t_silent_objects(self):
        system = make_system(t=1, behaviors={object_id(3): SilentBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        history = system.history()
        assert len(history.complete()) == 2
        assert check_swmr_atomicity(history).ok

    def test_tolerates_crash_during_run(self):
        system = make_system(t=2, behaviors={
            object_id(1): CrashAt(survive_messages=2),
            object_id(2): CrashAt(survive_messages=4),
        })
        for at in (0, 60, 120):
            system.write(f"v{at}", at=at)
            system.read(1, at=at + 30)
        system.run()
        history = system.history()
        assert len(history.complete()) == 6
        assert check_swmr_atomicity(history).ok

    def test_over_threshold_rejected_by_harness(self):
        with pytest.raises(ConfigurationError):
            make_system(t=1, behaviors={
                object_id(1): SilentBehavior(),
                object_id(2): SilentBehavior(),
            })


class TestConcurrency:
    @pytest.mark.parametrize("seed", range(5))
    def test_atomic_under_random_delays(self, seed):
        # Per-client operations stay sequential (the model allows one
        # outstanding op per client); different clients overlap freely.
        system = make_system(t=1, n_readers=3, policy=RandomDelivery(seed=seed, max_latency=15))
        system.write("a", at=0)
        system.read(1, at=5)
        system.write("b", at=150)
        system.read(2, at=152)
        system.read(3, at=154)
        system.write("c", at=300)
        system.read(1, at=305)
        system.run()
        history = system.history()
        assert check_swmr_atomicity(history).ok, check_swmr_atomicity(history).explanation

    def test_write_back_prevents_inversion(self):
        """Two sequential reads during write propagation stay monotone."""
        system = make_system(t=1, n_readers=2, policy=RandomDelivery(seed=42, max_latency=10))
        system.write("a", at=0)
        system.write("b", at=30)
        system.read(1, at=32)
        system.read(2, at=55)
        system.run()
        assert check_swmr_atomicity(system.history()).ok


class TestMultiWriterAbd:
    def test_two_round_writes(self):
        protocol = MultiWriterAbdProtocol()
        system = RegisterSystem(protocol, t=1, n_readers=2)
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.history().reads()[0].value == "a"

    def test_interleaved_writers_linearizable(self):
        from repro.registers.base import ProtocolContext
        from repro.sim.simulator import Simulator
        from repro.sim.process import ObjectServer
        from repro.spec.history import HistoryRecorder
        from repro.types import ProcessId, reader_id

        protocol = MultiWriterAbdProtocol()
        ctx = ProtocolContext(S=3, t=1, objects=object_ids(3))
        servers = [ObjectServer(pid=pid, handler=protocol.object_handler()) for pid in ctx.objects]
        recorder = HistoryRecorder()
        sim = Simulator(servers, history=recorder)
        for index, at in ((1, 0), (2, 3)):
            sim.invoke(
                ProcessId("writer", index), "write",
                protocol.write_generator_for(ctx, index, f"w{index}"),
                at=at, declared_value=f"w{index}",
            )
        sim.invoke(reader_id(1), "read", protocol.read_generator(ctx, reader_id(1)), at=40)
        sim.run()
        history = recorder.freeze()
        assert is_linearizable(history)
        assert history.reads()[0].value in ("w1", "w2")
