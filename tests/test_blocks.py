"""Unit and property tests for block partitions and superblocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import BlockPartition, read_bound_partition, write_bound_partition
from repro.core.recurrence import t_k
from repro.errors import ConfigurationError
from repro.types import object_ids


class TestBlockPartition:
    def test_union_and_size(self):
        partition = read_bound_partition(t=2)
        assert partition.size(["B1", "B2"]) == 4
        assert len(partition.union(["B1", "B4"])) == 4

    def test_block_of(self):
        partition = read_bound_partition(t=1)
        for name in partition.names:
            for pid in partition.members(name):
                assert partition.block_of(pid) == name

    def test_complement(self):
        partition = read_bound_partition(t=1)
        assert partition.complement(["B2"]) == ("B1", "B3", "B4")

    def test_unknown_block_rejected(self):
        partition = read_bound_partition(t=1)
        with pytest.raises(ConfigurationError):
            partition.members("B9")

    def test_overlapping_blocks_rejected(self):
        ids = object_ids(2)
        with pytest.raises(ConfigurationError):
            BlockPartition(S=2, blocks={"A": ids, "B": (ids[0],)})

    def test_uncovered_objects_rejected(self):
        ids = object_ids(3)
        with pytest.raises(ConfigurationError):
            BlockPartition(S=3, blocks={"A": ids[:2]})


class TestReadBoundPartition:
    @given(st.integers(1, 30))
    def test_default_sizes(self, t):
        partition = read_bound_partition(t)
        assert partition.size(["B1"]) == t
        assert partition.size(["B2"]) == t
        assert partition.size(["B3"]) == t
        assert partition.size(["B4"]) == t
        assert partition.S == 4 * t

    @given(st.integers(1, 20), st.integers(1, 20))
    def test_custom_s_within_bounds(self, t, extra):
        S = 3 * t + min(extra, t)
        partition = read_bound_partition(t, S)
        assert 1 <= partition.size(["B4"]) <= t

    def test_rejects_s_above_4t(self):
        with pytest.raises(ConfigurationError):
            read_bound_partition(t=2, S=9)

    def test_rejects_s_at_3t(self):
        with pytest.raises(ConfigurationError):
            read_bound_partition(t=2, S=6)


class TestWriteBoundPartition:
    @given(st.integers(1, 12))
    @settings(deadline=None)
    def test_total_size_is_3tk_plus_1(self, k):
        wbp = write_bound_partition(k)
        assert wbp.S == 3 * t_k(k) + 1
        assert wbp.t == t_k(k)

    @given(st.integers(1, 12))
    @settings(deadline=None)
    def test_identities_hold(self, k):
        """Equations (1)–(3) of the paper, over the full index ranges."""
        assert write_bound_partition(k).verify_identities()

    @given(st.integers(2, 10))
    @settings(deadline=None)
    def test_c1_is_empty_for_k_at_least_2(self, k):
        wbp = write_bound_partition(k)
        assert wbp.partition.size(["C1"]) == 0

    def test_paper_instance_k4(self):
        """The Figure 2 instance: k=4, t_4=10, S=31, block sizes as stated."""
        wbp = write_bound_partition(4)
        sizes = {name: len(wbp.partition.members(name)) for name in wbp.partition.names}
        assert sizes == {
            "B0": 1, "B1": 1, "B2": 2, "B3": 4, "B4": 8, "B5": 5,
            "C1": 0, "C2": 1, "C3": 1, "C4": 8,
        }

    def test_b_blocks_hold_2tk_plus_1(self):
        wbp = write_bound_partition(4)
        b_names = [f"B{j}" for j in range(0, 6)]
        assert wbp.partition.size(b_names) == 2 * t_k(4) + 1

    def test_c_blocks_hold_tk(self):
        wbp = write_bound_partition(4)
        c_names = [f"C{j}" for j in range(1, 5)]
        assert wbp.partition.size(c_names) == t_k(4)

    @given(st.integers(1, 6), st.integers(1, 4))
    @settings(deadline=None)
    def test_scaled_partitions(self, k, scale):
        """Proposition 2's scaling: identities survive multiplication by c."""
        wbp = write_bound_partition(k, scale=scale)
        assert wbp.S == (3 * t_k(k) + 1) * scale
        assert wbp.t == t_k(k) * scale
        assert wbp.verify_identities()

    @given(st.integers(1, 10))
    @settings(deadline=None)
    def test_reads_skip_exactly_t_objects(self, k):
        """Every read round of Lemma 1 skips exactly t_k objects."""
        wbp = write_bound_partition(k)
        for l in range(1, k):
            early = wbp.malicious_superblock(l - 2) + wbp.parity_superblock(l + 1)
            third = wbp.malicious_superblock(l - 2) + wbp.correct_superblock(l + 1)
            assert wbp.partition.size(early) == t_k(k), (k, l, "early")
            assert wbp.partition.size(third) == t_k(k), (k, l, "third")
        final = wbp.malicious_superblock(k - 2) + wbp.parity_superblock(k + 1)
        assert wbp.partition.size(final) == t_k(k)

    @given(st.integers(1, 10))
    @settings(deadline=None)
    def test_mimicry_budget_is_exactly_t(self, k):
        """|P_l ∪ M_{l−3}| = t_k: the @pr_{l−1} Byzantine budget."""
        wbp = write_bound_partition(k)
        for l in range(1, k + 1):
            parity = wbp.parity_superblock(l)
            extra = wbp.malicious_superblock(l - 3) if l >= 2 else ()
            assert wbp.partition.size(parity + extra) == t_k(k), (k, l)

    def test_superblock_index_ranges_enforced(self):
        wbp = write_bound_partition(3)
        with pytest.raises(ConfigurationError):
            wbp.malicious_superblock(3)  # max is k-1
        with pytest.raises(ConfigurationError):
            wbp.parity_superblock(0)
        with pytest.raises(ConfigurationError):
            wbp.correct_superblock(5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            write_bound_partition(0)
        with pytest.raises(ConfigurationError):
            write_bound_partition(2, scale=0)
