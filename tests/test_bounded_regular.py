"""Tests for the bounded-regular register (AAB07-style O(t) reads)."""

import pytest

from repro.faults.adversary import SilentBehavior
from repro.faults.byzantine import FabricatingBehavior
from repro.registers.base import RegisterSystem
from repro.registers.bounded_regular import BoundedRegularProtocol
from repro.sim.network import RandomDelivery
from repro.spec.regularity import check_swmr_regularity
from repro.types import object_id


def make_system(t=1, behaviors=None, policy=None):
    return RegisterSystem(BoundedRegularProtocol(), t=t, n_readers=2,
                          behaviors=behaviors, policy=policy)


class TestBounds:
    def test_read_round_bound_is_t_plus_2(self):
        protocol = BoundedRegularProtocol()
        assert protocol.read_round_bound(1) == 3
        assert protocol.read_round_bound(4) == 6

    def test_advertises_unbounded_static_rounds(self):
        assert BoundedRegularProtocol().read_rounds is None


class TestHappyPath:
    def test_clean_read_terminates_early(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "a"
        # With every object agreeing, certification happens in round one.
        assert system.max_rounds("read") <= 2

    def test_never_exceeds_bound_under_faults(self):
        t = 2
        system = make_system(t=t, behaviors={
            object_id(1): FabricatingBehavior(),
            object_id(2): SilentBehavior(),
        })
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("read") <= BoundedRegularProtocol().read_round_bound(t)
        assert system.history().reads()[0].value == "a"


class TestMultiRoundLoop:
    """Drive the read generator directly to exercise the voucher-pooling
    loop (hard to trigger through the simulator's benign schedules)."""

    @staticmethod
    def _drive(reply_rounds):
        from repro.registers.base import ProtocolContext
        from repro.sim.rounds import RoundOutcome
        from repro.types import object_ids, reader_id

        protocol = BoundedRegularProtocol()
        ctx = ProtocolContext(S=7, t=2, objects=object_ids(7))
        generator = protocol.read_tagged_generator(ctx, reader_id(1))
        spec = next(generator)
        rounds_used = 1
        try:
            for replies in reply_rounds:
                spec = generator.send(RoundOutcome(round_no=rounds_used, replies=replies))
                rounds_used += 1
        except StopIteration as stop:
            return stop.value, rounds_used
        raise AssertionError(f"generator still pending after {rounds_used} rounds")

    @staticmethod
    def _reply(pw_ts, w_ts, value="v"):
        from repro.types import TaggedValue, Timestamp

        return {
            "pw": TaggedValue(Timestamp(pw_ts), value if pw_ts else "⊥"),
            "w": TaggedValue(Timestamp(w_ts), value if w_ts else "⊥"),
        }

    def test_second_round_certifies(self):
        from repro.types import object_id

        # Round one: no pair reaches t+1 = 3 vouchers (2+2+1 split); round
        # two brings a third voucher for (1, v): certified and stable.
        round1 = {
            object_id(1): self._reply(1, 1),
            object_id(2): self._reply(1, 1),
            object_id(3): self._reply(0, 0),
            object_id(4): self._reply(0, 0),
            object_id(5): self._reply(2, 0, value="z"),
        }
        round2 = dict(round1)
        round2[object_id(6)] = self._reply(1, 1)
        result, rounds_used = self._drive([round1, round2])
        assert result.value == "v"
        assert rounds_used == 2

    def test_round_budget_exhausted_returns_best_effort(self):
        from repro.types import object_id

        # Never enough agreement (2+2+1 forever): the loop must stop at the
        # t+2 bound and fall back to the freshest report.
        stuck = {
            object_id(1): self._reply(1, 1),
            object_id(2): self._reply(1, 1),
            object_id(3): self._reply(0, 0),
            object_id(4): self._reply(0, 0),
            object_id(5): self._reply(2, 2, value="z"),
        }
        bound = BoundedRegularProtocol().read_round_bound(2)
        result, rounds_used = self._drive([stuck] * bound)
        assert rounds_used == bound
        assert result.value == "z"

    def test_unstable_certified_keeps_looping(self):
        from repro.types import object_id

        # (1, v) is certified but three objects each claim something newer
        # (three *different* pairs, so nothing newer certifies): the
        # stability guard must reject and ask for another round.
        shaky = {
            object_id(1): self._reply(1, 1),
            object_id(2): self._reply(1, 1),
            object_id(3): self._reply(1, 1),
            object_id(4): self._reply(9, 0, value="w9"),
            object_id(5): self._reply(8, 0, value="w8"),
            object_id(6): self._reply(7, 0, value="w7"),
        }
        settled = {
            object_id(4): self._reply(9, 9, value="w9"),
            object_id(5): self._reply(9, 9, value="w9"),
            object_id(6): self._reply(9, 9, value="w9"),
            object_id(7): self._reply(9, 9, value="w9"),
            object_id(1): self._reply(1, 1),
        }
        result, rounds_used = self._drive([shaky, settled])
        assert rounds_used == 2
        assert result.value == "w9"


class TestRegularity:
    def test_fabrication_never_certified(self):
        system = make_system(t=1, behaviors={object_id(4): FabricatingBehavior()})
        system.write("a", at=0)
        system.write("b", at=60)
        system.read(1, at=120)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "b"
        assert check_swmr_regularity(history).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_regular_under_random_delays(self, seed):
        system = make_system(t=1, policy=RandomDelivery(seed=seed, max_latency=6))
        system.write("a", at=0)
        system.read(1, at=5)
        system.write("b", at=50)
        system.read(2, at=55)
        system.run()
        verdict = check_swmr_regularity(system.history())
        assert verdict.ok, verdict.explanation
