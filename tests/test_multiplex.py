"""Tests for register multiplexing (shared physical rounds)."""

import pytest

from repro.errors import ProtocolError
from repro.registers.abd import AbdObjectHandler, QUERY
from repro.registers.multiplex import MULTI, MultiplexObjectHandler, multiplex
from repro.sim.network import Message
from repro.sim.rounds import ReplyRule, RoundOutcome, RoundSpec
from repro.types import TaggedValue, Timestamp, fresh_operation_id, object_id, reader_id


def multi_message(calls):
    return Message(
        src=reader_id(1), dst=object_id(1),
        op=fresh_operation_id(reader_id(1), "read"),
        round_no=1, tag=MULTI, payload={"calls": calls},
    )


class TestMultiplexHandler:
    def test_registers_created_lazily(self):
        handler = MultiplexObjectHandler(AbdObjectHandler())
        state = handler.initial_state()
        handler.handle(state, multi_message({"A": {"tag": QUERY, "payload": {}}}))
        assert "A" in state["registers"]
        assert "B" not in state["registers"]

    def test_per_register_isolation(self):
        handler = MultiplexObjectHandler(AbdObjectHandler())
        state = handler.initial_state()
        store = {"tag": "ABD_STORE", "payload": {"tv": TaggedValue(Timestamp(1), "x")}}
        handler.handle(state, multi_message({"A": store}))
        reply = handler.handle(state, multi_message({
            "A": {"tag": QUERY, "payload": {}},
            "B": {"tag": QUERY, "payload": {}},
        }))
        assert reply["calls"]["A"]["tv"].value == "x"
        assert reply["calls"]["B"]["tv"] == TaggedValue.initial()

    def test_wrong_tag_reports_error(self):
        handler = MultiplexObjectHandler(AbdObjectHandler())
        state = handler.initial_state()
        message = Message(
            src=reader_id(1), dst=object_id(1),
            op=fresh_operation_id(reader_id(1), "read"),
            round_no=1, tag="NOT_MULTI", payload={},
        )
        assert "error" in handler.handle(state, message)

    def test_malformed_payload_reports_error(self):
        handler = MultiplexObjectHandler(AbdObjectHandler())
        state = handler.initial_state()
        message = Message(
            src=reader_id(1), dst=object_id(1),
            op=fresh_operation_id(reader_id(1), "read"),
            round_no=1, tag=MULTI, payload={"calls": "garbage"},
        )
        assert "error" in handler.handle(state, message)


def drive(combinator, reply_maker, max_rounds=10):
    """Synchronously drive a multiplex generator with fabricated replies."""
    outcomes = []
    try:
        spec = next(combinator)
        for round_no in range(1, max_rounds + 1):
            replies = reply_maker(spec, round_no)
            outcomes.append(spec)
            spec = combinator.send(RoundOutcome(round_no=round_no, replies=replies))
    except StopIteration as stop:
        return stop.value, outcomes
    raise AssertionError("combinator did not finish")


class TestMultiplexCombinator:
    def _single_round_gen(self, name, result):
        def generator():
            outcome = yield RoundSpec(tag=f"Q-{name}", payload={"who": name},
                                      rule=ReplyRule(min_count=1))
            return (result, len(outcome.replies))

        return generator()

    def test_lockstep_and_projection(self):
        combinator = multiplex({
            "A": self._single_round_gen("A", "ra"),
            "B": self._single_round_gen("B", "rb"),
        })

        def replies(spec, round_no):
            assert spec.tag == MULTI
            calls = spec.payload["calls"]
            assert set(calls) == {"A", "B"}
            return {object_id(1): {"calls": {name: {"ok": name} for name in calls}}}

        result, rounds = drive(combinator, replies)
        assert result == {"A": ("ra", 1), "B": ("rb", 1)}
        assert len(rounds) == 1  # both substrates shared one physical round

    def test_uneven_round_counts(self):
        def two_rounds():
            yield RoundSpec(tag="R1", payload={}, rule=ReplyRule(min_count=1))
            yield RoundSpec(tag="R2", payload={}, rule=ReplyRule(min_count=1))
            return "long"

        combinator = multiplex({"short": self._single_round_gen("s", "s"), "long": two_rounds()})

        def replies(spec, round_no):
            calls = spec.payload["calls"]
            return {object_id(1): {"calls": {name: {} for name in calls}}}

        result, rounds = drive(combinator, replies)
        assert result["long"] == "long"
        assert len(rounds) == 2
        # Second physical round only carries the long substrate.
        assert set(rounds[1].payload["calls"]) == {"long"}

    def test_merged_rule_requires_every_substrate(self):
        def picky(name):
            def generator():
                outcome = yield RoundSpec(
                    tag=f"Q{name}", payload={},
                    rule=ReplyRule(min_count=1,
                                   predicate=lambda r: any(name in str(p) for p in r.values())),
                )
                return name

            return generator()

        combinator = multiplex({"A": picky("A"), "B": picky("B")})
        spec = next(combinator)
        # Replies satisfying only A's predicate: merged rule must be false.
        partial = {object_id(1): {"calls": {"A": {"data": "A"}, "B": {"data": "nope"}}}}
        assert not spec.rule.satisfied(partial)
        full = {object_id(1): {"calls": {"A": {"data": "A"}, "B": {"data": "B"}}}}
        assert spec.rule.satisfied(full)

    def test_nested_multiplex_flattens(self):
        inner = multiplex({"X": self._single_round_gen("X", "x")})
        combinator = multiplex({"outer": inner})
        spec = next(combinator)
        assert set(spec.payload["calls"]) == {"outer/X"}

    def test_malformed_byzantine_reply_invisible(self):
        combinator = multiplex({"A": self._single_round_gen("A", "ra")})
        spec = next(combinator)
        replies = {
            object_id(1): {"calls": {"A": {}}},
            object_id(2): {"garbage": True},     # fabricated junk
            object_id(3): "not-even-a-mapping",  # worse junk
        }
        assert spec.rule.satisfied(replies)
        try:
            combinator.send(RoundOutcome(round_no=1, replies=replies))
        except StopIteration as stop:
            assert stop.value == {"A": ("ra", 1)}

    def test_per_object_payload_forbidden(self):
        def bad():
            yield RoundSpec(tag="Q", payload={}, rule=ReplyRule(min_count=1),
                            per_object_payload={object_id(1): {"x": 1}})
            return None

        combinator = multiplex({"A": bad()})
        with pytest.raises(ProtocolError):
            next(combinator)
