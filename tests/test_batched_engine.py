"""The round-stepped batched engine: equivalence with the event engine.

The batched engine's contract is *observable byte-identity*: same
histories, same structured results, same wire traces (event for event, in
order), same executed event counts, same budget truncation points — for
every registered protocol, backend, scenario, and adversarial schedule.
These tests pin that contract, plus the wave-queue mechanics and the
process-layer batch hooks it is built on.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Cluster, available_protocols, get_spec, sweep
from repro.errors import ConfigurationError, SimulationError
from repro.sim.tracing import trace_fingerprint
from repro.faults.adversary import CrashAt
from repro.registers.base import RegisterSystem
from repro.sim.batched import (
    ENGINES,
    BatchedSimulator,
    WaveQueue,
    available_engines,
    resolve_engine,
)
from repro.sim.network import Message
from repro.sim.process import ObjectHandler, ObjectServer
from repro.sim.simulator import Simulator
from repro.types import fresh_operation_id, object_id, scoped_operation_serials, writer_id
from repro.workloads.generator import WorkloadGenerator

#: Registry protocols that run on a single-register-style backend.
SINGLE_BACKEND_PROTOCOLS = tuple(
    name for name in available_protocols() if get_spec(name).backend != "multi-writer"
)

#: The three scenario regimes of the equivalence grid.
GRID_SCENARIOS = ("fault-free", "faulted", "schedule")


def strip_engine(payload: dict) -> dict:
    """``to_dict`` minus the engine metadata tag (the only allowed delta)."""
    payload = dict(payload)
    payload.pop("engine", None)
    return payload


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _grid_cluster(name: str, scenario: str, engine: str) -> Cluster:
    spec = get_spec(name)
    cluster = Cluster(name, t=1, n_readers=3, engine=engine)
    if scenario == "schedule":
        # An adversarial plan-addressed schedule: the write never reaches
        # objects 1 and 2 (spaced reads keep every client sequential).
        return (
            cluster
            .with_operations([("write", "v1", 0), ("read", 1, 200), ("read", 2, 400)])
            .with_schedule((1, (1, 2)))
            .check(spec.default_check())
        )
    if scenario == "faulted":
        # The strongest adversary the protocol advertises coverage for.
        fault_scenario = spec.scenarios[-1] if len(spec.scenarios) > 1 else "crash"
        cluster = cluster.with_scenario(fault_scenario)
    return (
        cluster
        .with_workload(operations=8, spacing=35)
        .check(spec.default_check())
    )


class TestEquivalenceGrid:
    """RunResult.to_dict() byte-equality across every protocol × regime."""

    @pytest.mark.parametrize("name", SINGLE_BACKEND_PROTOCOLS)
    @pytest.mark.parametrize("scenario", GRID_SCENARIOS)
    def test_event_and_batched_results_byte_identical(self, name, scenario):
        event = _grid_cluster(name, scenario, "event").run(trials=2, seed=5)
        batched = _grid_cluster(name, scenario, "batched").run(trials=2, seed=5)
        assert canonical(strip_engine(event.to_dict())) == canonical(
            strip_engine(batched.to_dict())
        )

    @pytest.mark.parametrize("name", ("abd", "fast-regular", "secret-token"))
    def test_parallel_batched_matches_serial_event(self, name):
        spec = get_spec(name)
        serial = (
            Cluster(name, t=1, n_readers=3)
            .with_scenario("fault-free")
            .with_workload(operations=6, spacing=40)
            .check(spec.default_check())
            .run(trials=3, seed=11)
        )
        parallel = (
            Cluster(name, t=1, n_readers=3, engine="batched")
            .with_scenario("fault-free")
            .with_workload(operations=6, spacing=40)
            .check(spec.default_check())
            .run(trials=3, seed=11, parallel=True)
        )
        assert canonical(strip_engine(serial.to_dict())) == canonical(
            strip_engine(parallel.to_dict())
        )

    def test_sweep_carries_engine_choice(self):
        event = sweep(("abd",), scenarios=("fault-free",), trials=2, seed=3,
                      checks=("atomicity",))
        batched = sweep(("abd",), scenarios=("fault-free",), trials=2, seed=3,
                        checks=("atomicity",), engine="batched")
        assert batched.runs[0].engine == "batched"
        assert canonical(strip_engine(event.runs[0].to_dict())) == canonical(
            strip_engine(batched.runs[0].to_dict())
        )


class TestTraceEquivalence:
    """Wire traces are byte-identical — the strongest observable artifact."""

    def _fingerprint_run(self, cluster, keys=None, plans=12):
        with scoped_operation_serials():
            backend = cluster.build_backend()
            generator = WorkloadGenerator(seed=3, n_readers=3, spacing=25, keys=keys)
            for plan in generator.plan(plans):
                backend.schedule(plan)
            events = backend.run()
            return events, trace_fingerprint(backend.trace)

    @pytest.mark.parametrize("backend,keys", [
        ("single", None),
        ("sharded", 4),
        ("sharded", 16),
    ])
    def test_wire_traces_identical(self, backend, keys):
        key_names = tuple(f"k{i}" for i in range(1, (keys or 0) + 1)) or None
        results = [
            self._fingerprint_run(
                Cluster("abd", t=1, n_readers=3, backend=backend,
                        keys=keys, engine=engine),
                keys=key_names,
            )
            for engine in ENGINES
        ]
        assert results[0] == results[1]

    @pytest.mark.parametrize("protocol", ("mwmr-fast-regular", "mw-abd"))
    def test_multi_writer_traces_identical(self, protocol):
        results = [
            self._fingerprint_run(Cluster(protocol, t=1, n_readers=3, engine=engine))
            for engine in ENGINES
        ]
        assert results[0] == results[1]

    @pytest.mark.parametrize("scenario", ("crash", "silent", "replay", "fabricate"))
    def test_faulted_traces_identical(self, scenario):
        results = [
            self._fingerprint_run(
                Cluster("fast-regular", t=1, n_readers=3, engine=engine)
                .with_scenario(scenario)
            )
            for engine in ENGINES
        ]
        assert results[0] == results[1]

    @pytest.mark.parametrize("budget", (10, 37, 64, 101))
    def test_budget_truncation_identical(self, budget):
        """An exhausted event budget cuts both engines at the same event."""
        outcomes = []
        for engine in ENGINES:
            with scoped_operation_serials():
                backend = Cluster("abd", t=1, n_readers=3, engine=engine).build_backend()
                for plan in WorkloadGenerator(seed=3, n_readers=3, spacing=25).plan(12):
                    backend.schedule(plan)
                try:
                    executed = backend.run(max_events=budget)
                    error = None
                except SimulationError as caught:
                    executed, error = None, str(caught)
                outcomes.append((executed, error, trace_fingerprint(backend.trace)))
        assert outcomes[0] == outcomes[1]


class TestExploreParity:
    """Certify/refute outcomes and witness fingerprints match across engines."""

    @pytest.mark.parametrize("name", SINGLE_BACKEND_PROTOCOLS)
    def test_certification_parity(self, name):
        results = []
        for engine in ENGINES:
            result = (
                Cluster(name, t=1, engine=engine)
                .with_operations([("write", "v1", 0), ("read", 1, 60), ("read", 2, 120)])
                .explore(max_holds=1)
            )
            payload = result.to_dict()
            payload.pop("engine")
            results.append(canonical(payload))
        assert results[0] == results[1]

    def test_refutation_parity(self):
        witnesses = []
        for engine in ENGINES:
            result = (
                Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True,
                        engine=engine)
                .with_faults("stale-echo", count=2)
                .with_operations([("write", "v1", 0), ("read", 1, 100)])
                .check("atomicity")
                .explore(max_holds=2)
            )
            assert result.violations >= 1
            witnesses.append(result.witnesses[0])
        event_witness, batched_witness = witnesses
        assert event_witness.decisions == batched_witness.decisions
        assert event_witness.failures == batched_witness.failures
        assert event_witness.trace_hash == batched_witness.trace_hash
        # A witness found on one engine replays byte-identically on the other.
        assert batched_witness.reproduces()


class TestWaveQueue:
    def test_schedule_preserves_order_within_a_tick(self):
        queue = WaveQueue()
        seen = []
        queue.schedule(1, lambda: seen.append("a"))
        queue.schedule(1, lambda: seen.append("b"))
        queue.schedule(0, lambda: seen.append("now"))
        assert queue.peek_time() == 0
        for entry in queue.pop_wave():
            entry()
        assert queue.now == 0 and seen == ["now"]
        for entry in queue.pop_wave():
            entry()
        assert queue.now == 1 and seen == ["now", "a", "b"]
        assert not queue and queue.peek_time() is None

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            WaveQueue().schedule(-1, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            WaveQueue().pop_wave()

    def test_len_counts_run_entries_expanded(self):
        queue = WaveQueue()
        op = fresh_operation_id(writer_id(), "write")
        messages = [
            Message(src=writer_id(), dst=object_id(i), op=op, round_no=1,
                    tag="T", payload={})
            for i in (1, 2, 3)
        ]
        queue.push_run(5, messages)
        queue.push_message(5, messages[0])
        queue.schedule(2, lambda: None)
        assert len(queue) == 5  # 3-message run + 1 single + 1 action

    def test_waves_pop_in_time_order(self):
        queue = WaveQueue()
        queue.schedule(7, lambda: "late")
        queue.schedule(2, lambda: "early")
        queue.schedule(5, lambda: "mid")
        times = []
        while queue:
            queue.pop_wave()
            times.append(queue.now)
        assert times == [2, 5, 7]


class TestEngineRegistry:
    def test_resolve_engine(self):
        assert resolve_engine("event") is Simulator
        assert resolve_engine("batched") is BatchedSimulator
        assert available_engines() == ENGINES == ("event", "batched")
        with pytest.raises(ConfigurationError):
            resolve_engine("warp")

    def test_cluster_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            Cluster("abd", engine="warp")
        with pytest.raises(ConfigurationError):
            Cluster("abd").with_engine("warp")

    def test_with_engine_is_fluent_and_immutable(self):
        base = Cluster("abd", t=1)
        batched = base.with_engine("batched")
        assert base.run(trials=1).engine == "event"
        assert batched.run(trials=1).engine == "batched"

    def test_engine_tag_only_on_non_default_results(self):
        event = Cluster("abd", t=1).check("atomicity").run(trials=1)
        batched = Cluster("abd", t=1, engine="batched").check("atomicity").run(trials=1)
        assert "engine" not in event.to_dict()
        assert batched.to_dict()["engine"] == "batched"

    def test_register_system_resolves_engine(self):
        system = RegisterSystem(get_spec("abd").build(), t=1, engine="batched")
        assert isinstance(system.simulator, BatchedSimulator)
        with pytest.raises(ConfigurationError):
            RegisterSystem(get_spec("abd").build(), t=1, engine="warp")


class _RecordingHandler(ObjectHandler):
    """Echo handler that records how its batch hook is driven."""

    def __init__(self):
        self.batches = []

    def initial_state(self):
        return {"seen": 0}

    def handle(self, state, message):
        state["seen"] += 1
        return {"seen": state["seen"]}

    def handle_batch(self, state, messages):
        self.batches.append(len(messages))
        return super().handle_batch(state, messages)


def _invocation(op, dst, tag="T"):
    return Message(src=writer_id(), dst=dst, op=op, round_no=1, tag=tag, payload={})


class TestProcessBatchHooks:
    def test_receive_batch_matches_sequential_receive(self):
        handler = _RecordingHandler()
        batched = ObjectServer(pid=object_id(1), handler=handler)
        sequential = ObjectServer(pid=object_id(1), handler=_RecordingHandler())
        op = fresh_operation_id(writer_id(), "write")
        messages = [_invocation(op, object_id(1)) for _ in range(4)]
        replies = batched.receive_batch(messages)
        expected = [sequential.receive(message) for message in messages]
        assert replies == expected
        assert batched.messages_seen == sequential.messages_seen == 4
        assert handler.batches == [4]  # one handler dispatch for the wave

    def test_faulty_reply_batch_preserves_per_message_counters(self):
        """CrashAt crossing its threshold inside one wave behaves as if
        the messages had been dispatched one event at a time."""
        op = fresh_operation_id(writer_id(), "write")
        messages = [_invocation(op, object_id(1)) for _ in range(5)]
        batched = ObjectServer(
            pid=object_id(1), handler=_RecordingHandler(),
            behavior=CrashAt(survive_messages=3),
        )
        sequential = ObjectServer(
            pid=object_id(1), handler=_RecordingHandler(),
            behavior=CrashAt(survive_messages=3),
        )
        replies = batched.receive_batch(messages)
        expected = [sequential.receive(message) for message in messages]
        assert replies == expected
        assert [reply is None for reply in replies] == [False] * 3 + [True] * 2

    def test_concurrent_rounds_take_the_grouped_path(self):
        """Two same-tick broadcasts reach each object as one batch call."""
        calls = []
        original = ObjectServer.receive_batch

        def spy(self, messages):
            calls.append((self.pid, len(messages)))
            return original(self, messages)

        system = RegisterSystem(
            get_spec("abd").build(n_readers=2), t=1, n_readers=2, engine="batched"
        )
        system.read(1, at=0)
        system.read(2, at=0)
        try:
            ObjectServer.receive_batch = spy
            system.run()
        finally:
            ObjectServer.receive_batch = original
        # Both concurrent reads broadcast at the same tick: each object gets
        # its two invocations through a single receive_batch dispatch, once
        # per round of the two-round ABD read.
        assert calls and all(count == 2 for _, count in calls)
        assert len(calls) == 2 * system.ctx.S
        assert {pid for pid, _ in calls} == set(system.simulator.objects)

    def test_concurrent_rounds_match_event_engine(self):
        fingerprints = []
        for engine in ENGINES:
            with scoped_operation_serials():
                system = RegisterSystem(
                    get_spec("abd").build(n_readers=3), t=1, n_readers=3, engine=engine
                )
                system.write("v1", at=0)
                system.read(1, at=0)
                system.read(2, at=0)
                system.read(3, at=0)
                events = system.run()
                fingerprints.append((events, trace_fingerprint(system.trace)))
        assert fingerprints[0] == fingerprints[1]


class TestEngineJsonlMetadata:
    def test_jsonl_rows_key_on_engine(self, tmp_path, capsys):
        from repro.__main__ import main

        event_path = tmp_path / "event.jsonl"
        batched_path = tmp_path / "batched.jsonl"
        assert main(["run", "--protocol", "abd", "--trials", "1",
                     "--jsonl", str(event_path)]) == 0
        assert main(["run", "--protocol", "abd", "--engine", "batched",
                     "--trials", "1", "--jsonl", str(batched_path)]) == 0
        event_row = json.loads(event_path.read_text().strip())
        batched_row = json.loads(batched_path.read_text().strip())
        assert "engine" not in event_row
        assert batched_row["engine"] == "batched"
        # Identical results apart from the tag…
        assert canonical(strip_engine(event_row)) == canonical(strip_engine(batched_row))
        # …but compare treats engines as distinct configurations.
        capsys.readouterr()
        assert main(["compare", str(event_path), str(batched_path)]) == 0
        assert "compared 0 run(s)" in capsys.readouterr().out
