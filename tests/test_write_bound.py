"""Tests for the executable write lower bound (Lemma 1 / Proposition 2)."""

import pytest

from repro.core.recurrence import t_k
from repro.core.write_bound import WriteLowerBoundConstruction
from repro.errors import ConstructionError, ConstructionEscape
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.strawman import ThreeRoundReadProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol


class TestViolationCertificates:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_strawman_always_convicted(self, k):
        construction = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=k), k=k
        )
        outcome = construction.execute()
        assert outcome.certificate.valid, outcome.certificate.render()
        assert outcome.certificate.verdict.violated_property == 1

    def test_figure2_instance_k4(self):
        """The paper's illustrated instance: k=4, t_4=10, S=31."""
        construction = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=4), k=4
        )
        assert construction.t == 10
        assert construction.partition.S == 31
        outcome = construction.execute()
        assert outcome.certificate.valid, outcome.certificate.render()

    def test_final_run_has_no_write(self):
        outcome = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=2), k=2
        ).execute()
        assert "write" not in outcome.final_run.ops
        assert outcome.final_run.returned("rd2") == 1

    @pytest.mark.parametrize("k", [2, 3])
    def test_byzantine_budget_respected(self, k):
        outcome = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=k), k=k
        ).execute(keep_runs=True)
        for run in outcome.kept_runs:
            assert run.malicious_object_count() <= t_k(k), run.name

    def test_reader_count_is_k(self):
        k = 3
        outcome = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=k), k=k
        ).execute(keep_runs=True)
        for run in outcome.kept_runs:
            readers = {op.client for op in run.ops.values() if op.kind == "read"}
            assert len(readers) <= k

    def test_run_chain_length(self):
        k = 2
        outcome = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=k), k=k
        ).execute()
        # (pr_l, prC_l, Δpr_l) per level.
        assert outcome.runs_executed == 3 * k

    def test_proposition_2_scaled_instance(self):
        """Blocks multiplied by c=2: S = 2(3t_2+1) = 14, t = 4."""
        construction = WriteLowerBoundConstruction(
            lambda: ThreeRoundReadProtocol(write_rounds=2), k=2, scale=2
        )
        assert construction.t == 2 * t_k(2)
        assert construction.partition.S == 2 * (3 * t_k(2) + 1)
        outcome = construction.execute()
        assert outcome.certificate.valid, outcome.certificate.render()


class TestConfiguration:
    def test_wrong_write_round_count_rejected(self):
        with pytest.raises(ConstructionError):
            WriteLowerBoundConstruction(
                lambda: ThreeRoundReadProtocol(write_rounds=3), k=2
            )

    def test_k_zero_rejected(self):
        with pytest.raises(ConstructionError):
            WriteLowerBoundConstruction(
                lambda: ThreeRoundReadProtocol(write_rounds=1), k=0
            )


class TestTightness:
    def test_four_round_read_transform_escapes(self):
        """The matching 4-round-read implementation cannot be trapped: its
        reads do not terminate within the three scripted rounds."""

        class FourRoundVictimFactory:
            def __call__(self):
                protocol = RegularToAtomicProtocol(
                    lambda: FastRegularProtocol(), n_readers=2
                )
                protocol.write_rounds = 2  # satisfies the k check
                return protocol

        construction = WriteLowerBoundConstruction(FourRoundVictimFactory(), k=2)
        with pytest.raises(ConstructionEscape):
            construction.execute()
