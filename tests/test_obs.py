"""Tests for the observability layer: spans, metrics, exporters, parity."""

import io
import json
import pathlib

import pytest

from repro.api import Cluster
from repro.obs import (
    RESERVOIR_SIZE,
    MetricsRegistry,
    StreamingSink,
    chrome_trace_events,
    dump_metrics_jsonl,
    dump_spans_jsonl,
    summarize_spans,
    write_chrome_trace,
)

TIMELINE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "timelines" / "reconfig_churn_timeline.json"
)


def churn_cluster(observe=True):
    """The reconfig churn configuration the committed timeline pins."""
    return (
        Cluster("abd", t=1, S=3, backend="reconfig", allow_overfault=True,
                observe=observe)
        .with_faults("rolling-replace", count=3, base=4, stagger=8)
        .with_repairs((1, 40), (2, 110), (3, 180))
        .with_workload(operations=9, reads=0.5, spacing=30)
        .check("atomicity")
    )


# One representative configuration per subsystem the span layer reads:
# a plain protocol, a crash-recover fault with durable journals, a
# reconfig repair, and a k-atomic (bounded-stale) trial.
GRID = {
    "plain": lambda: Cluster("abd", t=1, observe=True)
        .with_workload(operations=8).check("atomicity"),
    "crash-recover": lambda: Cluster("abd", t=1, observe=True)
        .with_faults("crash-recover", survive_messages=4)
        .with_durability("mem")
        .with_workload(operations=8).check("atomicity"),
    "reconfig-churn": churn_cluster,
    "k-atomic": lambda: Cluster("abd", t=1, consistency="k-atomic(2)",
                                observe=True)
        .with_workload(operations=8).check("k-atomic(2)"),
}


def obs_dump(result):
    """The byte-comparable observability payload of a run (no wall clock)."""
    return json.dumps(
        [[t.obs["spans"], t.obs["metrics"], t.obs["events"]] for t in result.trials],
        sort_keys=True,
    )


class TestCrossEngineParity:
    @pytest.mark.parametrize("config", sorted(GRID))
    def test_span_and_metric_dumps_identical_across_engines(self, config):
        dumps = {
            engine: obs_dump(
                GRID[config]().with_engine(engine).run(trials=2, seed=3)
            )
            for engine in ("event", "batched")
        }
        assert dumps["event"] == dumps["batched"]

    @pytest.mark.parametrize("config", sorted(GRID))
    def test_span_and_metric_dumps_identical_serial_vs_parallel(self, config):
        serial = GRID[config]().run(trials=2, seed=3, parallel=False)
        parallel = GRID[config]().run(trials=2, seed=3, parallel=True)
        assert obs_dump(serial) == obs_dump(parallel)


class TestOffState:
    def test_disabled_result_is_byte_identical_to_an_unobserved_run(self):
        def run(**kwargs):
            return (
                Cluster("abd", t=1, **kwargs)
                .with_faults("crash")
                .with_workload(operations=8)
                .check("atomicity")
                .run(trials=2, seed=5)
            )

        baseline = json.dumps(run().to_dict(), sort_keys=True)
        explicit_off = json.dumps(run(observe=False).to_dict(), sort_keys=True)
        assert baseline == explicit_off
        assert '"events"' not in baseline and '"elapsed_s"' not in baseline

    def test_with_observe_surfaces_events_and_duration(self):
        result = (
            Cluster("abd", t=1)
            .with_observe()
            .with_workload(operations=6)
            .check("atomicity")
            .run(trials=1, seed=1)
        )
        payload = result.trials[0].to_dict()
        assert payload["events"] == result.trials[0].obs["events"] > 0
        assert payload["elapsed_s"] >= 0.0
        # The deterministic keys are unchanged: popping the two new ones
        # recovers the unobserved payload exactly.
        off = (
            Cluster("abd", t=1)
            .with_workload(operations=6)
            .check("atomicity")
            .run(trials=1, seed=1)
        )
        payload.pop("events")
        payload.pop("elapsed_s")
        assert payload == off.trials[0].to_dict()


class TestSpanContent:
    def test_op_spans_follow_invocation_order_with_round_children(self):
        result = GRID["plain"]().run(trials=1, seed=3)
        spans = result.trials[0].obs["spans"]
        ops = [s for s in spans if s["span"] == "op"]
        rounds = [s for s in spans if s["span"] == "round"]
        # Per-client, spans follow invocation order.
        for client in {o["client"] for o in ops}:
            starts = [o["start"] for o in ops if o["client"] == client]
            assert starts == sorted(starts)
        for op in ops:
            children = [
                r for r in rounds
                if (r["client"], r["serial"]) == (op["client"], op["serial"])
            ]
            assert len(children) == op["rounds"]
            for child in children:
                assert op["start"] <= child["start"]
                assert child["end"] - child["start"] == child["wait"] > 0
                assert child["replies"] >= child["needed"]
                assert child["destinations"] == ["s1", "s2", "s3"]

    def test_recovery_window_spans_crash_to_rejoin(self):
        result = GRID["crash-recover"]().run(trials=1, seed=3)
        spans = result.trials[0].obs["spans"]
        recoveries = [s for s in spans if s["span"] == "recovery"]
        assert len(recoveries) == 1
        window = recoveries[0]
        assert window["behavior"].startswith("crash-recover")
        assert window["end"] > window["start"]

    def test_sync_spans_account_every_journal_byte(self):
        result = GRID["crash-recover"]().run(trials=1, seed=3)
        trial = result.trials[0]
        syncs = [s for s in trial.obs["spans"] if s["span"] == "sync"]
        assert syncs
        metrics = {m["metric"]: m for m in trial.obs["metrics"]}
        assert metrics["journal.sync.count"]["value"] == len(syncs)
        assert metrics["journal.sync.bytes"]["value"] == sum(s["bytes"] for s in syncs)

    def test_repair_rounds_carry_transfer_and_install_phases(self):
        result = churn_cluster().run(trials=1, seed=3)
        phased = [
            s for s in result.trials[0].obs["spans"]
            if s["span"] == "round" and "phase" in s
        ]
        assert [(s["phase"], s["start"]) for s in phased] == [
            ("transfer", 40), ("install", 42),
            ("transfer", 110), ("install", 112),
            ("transfer", 180), ("install", 182),
        ]
        installs = [s for s in phased if s["phase"] == "install"]
        assert all(s["needed"] == 1 and len(s["destinations"]) == 1 for s in installs)

    def test_staleness_metric_present_only_for_non_atomic_models(self):
        atomic = GRID["plain"]().run(trials=1, seed=3)
        bounded = GRID["k-atomic"]().run(trials=1, seed=3)
        atomic_names = {m["metric"] for m in atomic.trials[0].obs["metrics"]}
        bounded_names = {m["metric"] for m in bounded.trials[0].obs["metrics"]}
        assert "staleness.lag" not in atomic_names
        assert "staleness.lag" in bounded_names


class TestSinks:
    def test_streaming_matches_exact_registry_under_reservoir_size(self):
        exact, streaming = MetricsRegistry(), StreamingSink()
        samples = [(i * 37) % 101 for i in range(RESERVOIR_SIZE)]
        for sink in (exact, streaming):
            sink.count("ops.read", 7)
            sink.count("ops.read", 3)
            for sample in samples:
                sink.observe("quorum.wait", sample)
        assert exact.snapshot() == streaming.snapshot()

    def test_streaming_is_bounded_and_deterministic_above_reservoir_size(self):
        def fill():
            sink = StreamingSink(reservoir=64)
            for i in range(10_000):
                sink.observe("quorum.wait", (i * 13) % 997)
            return sink

        a, b = fill(), fill()
        assert len(a._reservoirs["quorum.wait"].sample) == 64
        snapshot = a.snapshot()
        assert snapshot == b.snapshot()
        (record,) = snapshot
        assert record["count"] == 10_000
        assert record["sum"] == sum((i * 13) % 997 for i in range(10_000))
        assert record["min"] == 0 and record["max"] == 996
        for label in ("p50", "p90", "p99"):
            assert 0 <= record[label] <= 996

    def test_streaming_rejects_empty_reservoir(self):
        with pytest.raises(ValueError):
            StreamingSink(reservoir=0)


class TestExporters:
    def test_jsonl_dumps_merge_extras_and_sort_keys(self):
        result = GRID["plain"]().run(trials=1, seed=3)
        trial = result.trials[0]
        spans_sink, metrics_sink = io.StringIO(), io.StringIO()
        n_spans = dump_spans_jsonl(trial.obs["spans"], spans_sink, extra={"trial": 0})
        n_metrics = dump_metrics_jsonl(trial.obs["metrics"], metrics_sink, extra={"trial": 0})
        span_lines = spans_sink.getvalue().splitlines()
        assert n_spans == len(span_lines) == len(trial.obs["spans"])
        assert n_metrics == len(metrics_sink.getvalue().splitlines())
        for line in span_lines:
            record = json.loads(line)
            assert record["trial"] == 0
            assert list(record) == sorted(record)

    def test_chrome_trace_events_cover_every_span(self):
        result = GRID["crash-recover"]().run(trials=1, seed=3)
        spans = result.trials[0].obs["spans"]
        events = chrome_trace_events(spans, pid=4, label="x")
        named_tracks = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["pid"] == 4 for e in events)
        assert len(instants) == sum(1 for s in spans if s["span"] == "sync")
        assert len(complete) == sum(1 for s in spans if s["span"] != "sync")
        # Track order: writer first, then readers, then objects.
        track_names = [e["args"]["name"] for e in named_tracks]
        assert track_names[0] == "w"
        roles = [name[0] for name in track_names]
        assert roles == sorted(roles, key="wrqs".index)
        for event in complete:
            assert event["dur"] >= 0

    def test_summarize_spans_renders_one_row_per_trial(self):
        result = GRID["plain"]().run(trials=2, seed=3)
        records = [
            dict(span, trial=trial.trial)
            for trial in result.trials
            for span in trial.obs["spans"]
        ]
        table = summarize_spans(records)
        lines = table.splitlines()
        assert len(lines) == 5  # title, header, rule, two trial rows
        assert lines[3].startswith("0") and lines[4].startswith("1")


class TestCommittedTimeline:
    def test_churn_timeline_artifact_matches_a_fresh_run(self):
        result = churn_cluster().run(trials=2, seed=3)
        sink = io.StringIO()
        write_chrome_trace(
            [
                (trial.trial, f"trial {trial.trial} — reconfig churn",
                 trial.obs["spans"])
                for trial in result.trials
            ],
            sink,
        )
        assert sink.getvalue() == TIMELINE_PATH.read_text(encoding="utf-8")

    def test_timeline_places_repair_phases_at_their_virtual_times(self):
        document = json.loads(TIMELINE_PATH.read_text(encoding="utf-8"))
        repairs = sorted(
            (e["pid"], e["ts"], e["name"])
            for e in document["traceEvents"]
            if e.get("name", "").startswith("repair:")
        )
        expected = sorted(
            (pid, ts, name)
            for pid in (0, 1)
            for ts, name in (
                (40, "repair:transfer"), (42, "repair:install"),
                (110, "repair:transfer"), (112, "repair:install"),
                (180, "repair:transfer"), (182, "repair:install"),
            )
        )
        assert repairs == expected


class TestWitnessObserveField:
    def test_witness_round_trips_the_observe_flag(self):
        from repro.explore.engine import ScheduleProbe
        from repro.explore.witness import ScheduleWitness

        probe = ScheduleProbe(
            protocol="abd",
            protocol_kwargs=(),
            t=1,
            S=None,
            n_readers=1,
            n_writers=1,
            keys=("x",),
            backend="mem",
            allow_overfault=False,
            scenario=None,
            fault_groups=(),
            schedule=(),
            plans=(),
            checks=("atomicity",),
            observe=True,
        )
        witness = ScheduleWitness(
            probe=probe, decisions=(), discovered=(),
            failures=(("atomicity", "x"),), trace_hash="00" * 12,
        )
        data = witness.to_dict()
        assert data["observe"] is True
        assert ScheduleWitness.from_dict(data).probe.observe is True
        data.pop("observe")
        assert ScheduleWitness.from_dict(data).probe.observe is False
