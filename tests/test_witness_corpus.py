"""Witness regression corpus: committed refutations must keep reproducing.

``tests/witnesses/`` holds minimized :class:`ScheduleWitness` JSON files —
executable counterexamples the schedule explorer once discovered.  Each is
replayed here on **both** simulation engines; a failure means either the
violation no longer reproduces (a silent protocol/simulator behaviour
change) or the wire-trace fingerprint drifted (the run is no longer
byte-identical to the recorded discovery).  CI replays the corpus through
``repro replay`` as well, so drift fails the build twice over.

Regenerating after an *intentional* semantic change::

    PYTHONPATH=src python -m repro explore --protocol atomic-fast-regular \
        --t 1 --S 4 --faults stale-echo --count 2 --allow-overfault \
        --ops 2 --reads 0.5 --max-holds 2 \
        --witness tests/witnesses/stale_read.json --expect-violation

(then review the diff — a fingerprint change must be explainable).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.explore import FaultTrigger, HoldLink, ScheduleWitness
from repro.sim.batched import ENGINES

WITNESS_DIR = Path(__file__).parent / "witnesses"
WITNESS_FILES = sorted(WITNESS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert WITNESS_FILES, "tests/witnesses/ lost its committed witnesses"


@pytest.mark.parametrize("path", WITNESS_FILES, ids=lambda p: p.stem)
def test_witness_round_trips(path):
    witness = ScheduleWitness.load(path)
    assert ScheduleWitness.from_json(witness.to_json()) == witness


@pytest.mark.parametrize("path", WITNESS_FILES, ids=lambda p: p.stem)
@pytest.mark.parametrize("engine", ENGINES)
def test_witness_reproduces_on_engine(path, engine):
    """The recorded violation replays byte-identically on every engine."""
    witness = ScheduleWitness.load(path)
    witness = dataclasses.replace(
        witness, probe=dataclasses.replace(witness.probe, engine=engine)
    )
    outcome = witness.replay()
    assert outcome.failures == witness.failures, (
        f"{path.name}: recorded violation no longer reproduces on the "
        f"{engine} engine — a behaviour change reached a certified "
        f"counterexample"
    )
    assert outcome.trace_hash == witness.trace_hash, (
        f"{path.name}: wire-trace fingerprint drifted on the {engine} "
        f"engine (recorded {witness.trace_hash}, replayed {outcome.trace_hash})"
    )


def test_stale_read_witness_shape():
    """The canonical stale-read witness stays minimal: one held link."""
    witness = ScheduleWitness.load(WITNESS_DIR / "stale_read.json")
    assert witness.probe.protocol == "atomic-fast-regular"
    assert len(witness.decisions) == 1
    assert witness.failures and witness.failures[0][0] == "atomicity"


def test_stale_rejoin_witness_shape():
    """The stale-rejoin witness: a recovered-but-stale object breaks ABD.

    An fsync-lag object acknowledges the write's round-2 store, crashes
    before syncing it, and rejoins with the pre-write journal image; one
    held link then steers a later read onto a quorum containing the
    rejoined object, which answers with ⊥ — an atomicity violation that
    only exists because recovery is a schedule choice point.
    """
    witness = ScheduleWitness.load(WITNESS_DIR / "stale_rejoin.json")
    assert witness.probe.protocol == "abd"
    assert witness.probe.durability == "mem"
    assert witness.probe.fault_groups and witness.probe.fault_groups[0].fault == "fsync-lag"
    assert len(witness.decisions) == 1
    assert witness.failures and witness.failures[0][0] == "atomicity"


def test_k1_violation_witness_shape():
    """The k1-violation witness: bounded staleness is visible, and bounded.

    A ``k-atomic(2)`` backend serves a read that overlaps the second write;
    with no holds the lagged view returns the previous value and 1-atomicity
    holds.  Holding the write's two quorum links starves the inner read of
    the new value, so the lagged view falls back to ⊥ while the first write
    has completed — a 1-atomicity violation.  The same configuration is
    certified 2-atomic over the identical bounded schedule space
    (tests/test_consistency_backend.py), so the witness pins the spectrum
    gap between k=1 and k=2, not a backend bug.
    """
    witness = ScheduleWitness.load(WITNESS_DIR / "k1_violation.json")
    assert witness.probe.protocol == "abd"
    assert witness.probe.backend == "k-atomic"
    assert witness.probe.consistency == "k-atomic(2)"
    assert len(witness.decisions) == 2
    assert witness.failures and witness.failures[0][0] == "k-atomic(1)"
    assert "beyond the k=1 bound" in witness.failures[0][1]


def test_timed_stale_frontier_witness_shape():
    """The frontier's refutation witness: fault timing IS a choice point.

    One stale-echo object is active from the start; a second carries a
    ``timed(stale-echo@99)`` wrapper that never fires on the facade's
    schedule, so without timing choice points the bounded space is clean.
    The explorer's swept trigger fires the second object at delivery 0
    (``fire s2@0``) and one held link steers the read onto the two stale
    objects — the minimized mixed-vocabulary witness that refutes
    atomicity while ``repro frontier`` certifies k-atomic(2) for the same
    configuration.
    """
    witness = ScheduleWitness.load(WITNESS_DIR / "timed_stale_frontier.json")
    assert witness.probe.protocol == "atomic-fast-regular"
    assert witness.probe.allow_overfault
    faults = {g.fault for g in witness.probe.fault_groups}
    assert faults == {"stale-echo", "timed"}
    holds = [d for d in witness.decisions if isinstance(d, HoldLink)]
    triggers = [d for d in witness.decisions if isinstance(d, FaultTrigger)]
    assert len(holds) == 1 and len(triggers) == 1
    assert triggers[0].obj == 2 and triggers[0].at == 0
    assert witness.failures and witness.failures[0][0] == "atomicity"
    assert "stale read" in witness.failures[0][1]


def test_timed_double_trigger_witness_shape():
    """The all-triggers witness: both stale objects are explorer-fired.

    Both faulty objects carry inert ``timed(stale-echo@99)`` wrappers, so
    the *only* path to the violation is through two swept trigger
    decisions plus the steering hold — the deepest mixed decision set in
    the corpus, discovered and saved through the CLI alone.
    """
    witness = ScheduleWitness.load(WITNESS_DIR / "timed_double_trigger.json")
    assert witness.probe.protocol == "atomic-fast-regular"
    triggers = [d for d in witness.decisions if isinstance(d, FaultTrigger)]
    assert sorted((t.obj, t.at) for t in triggers) == [(1, 0), (2, 0)]
    assert all(g.fault == "timed" for g in witness.probe.fault_groups)
    assert witness.failures and witness.failures[0][0] == "atomicity"


def test_underquorum_transfer_witness_shape():
    """The under-quorum repair witness: state transfer below S−t loses writes.

    s1 permanently crashes after one delivery and is replaced by a spare;
    with ``xfer_quorum=1`` the transfer read may reach *only* the dead
    member's blank successor-to-be, so the install round seeds the new
    epoch from ⊥.  One held link then steers a later read onto a quorum
    containing the freshly activated spare, which answers with the
    resurrected initial value — an atomicity violation that disappears at
    the sound default quorum (the explorer certifies that configuration at
    the same bounds, see tests/test_reconfig.py).
    """
    witness = ScheduleWitness.load(WITNESS_DIR / "underquorum_transfer.json")
    assert witness.probe.protocol == "abd"
    assert witness.probe.backend == "reconfig"
    assert witness.probe.repairs == ((1, 5),)
    assert witness.probe.xfer_quorum == 1
    assert witness.probe.fault_groups and witness.probe.fault_groups[0].fault == "perm-crash"
    assert len(witness.decisions) == 1
    assert witness.failures and witness.failures[0][0] == "atomicity"
    assert "stale read" in witness.failures[0][1]
