"""Tests for the GV06-style fast regular register."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import SilentBehavior
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.sim.network import RandomDelivery
from repro.spec.regularity import check_swmr_regularity
from repro.types import object_id


def make_system(trust_model="replay", t=1, behaviors=None, policy=None, n_readers=2):
    return RegisterSystem(
        FastRegularProtocol(trust_model=trust_model),
        t=t, n_readers=n_readers, behaviors=behaviors, policy=policy,
    )


class TestConfiguration:
    def test_requires_3t_plus_1(self):
        with pytest.raises(ConfigurationError):
            RegisterSystem(FastRegularProtocol(), t=1, S=3)

    def test_trust_model_validated(self):
        with pytest.raises(ConfigurationError):
            FastRegularProtocol(trust_model="psychic")

    def test_advertised_rounds(self):
        protocol = FastRegularProtocol()
        assert protocol.write_rounds == 2
        assert protocol.read_rounds == 2


class TestRoundComplexity:
    @pytest.mark.parametrize("trust_model", ["replay", "unauthenticated"])
    def test_two_round_writes_and_reads(self, trust_model):
        system = make_system(trust_model)
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.max_rounds("read") == 2

    def test_two_rounds_even_with_silent_byzantine(self):
        system = make_system("replay", behaviors={object_id(4): SilentBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("read") == 2
        assert len(system.history().complete()) == 2


class TestRegularitySequential:
    @pytest.mark.parametrize("trust_model", ["replay", "unauthenticated"])
    def test_fresh_read_after_write(self, trust_model):
        system = make_system(trust_model)
        system.write("a", at=0)
        system.write("b", at=60)
        system.read(1, at=120)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "b"
        assert check_swmr_regularity(history).ok


class TestReplayAdversary:
    """The adversary class of the paper's proofs: genuine-state replay."""

    def test_stale_echo_cannot_stale_a_read(self):
        system = make_system("replay", t=1)
        # Freeze object 1 at its pristine state: it echoes ⊥ forever.
        server = system.server(object_id(1))
        server.behavior = StaleEchoBehavior.freezing(server)
        system.write("a", at=0)
        system.read(1, at=50)
        system.write("b", at=100)
        system.read(2, at=160)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "b"]
        assert check_swmr_regularity(history).ok

    def test_stale_echo_of_intermediate_state(self):
        system = make_system("replay", t=1)
        system.write("a", at=0)
        system.run()
        server = system.server(object_id(2))
        server.behavior = StaleEchoBehavior.freezing(server)  # frozen at "a"
        system.write("b", at=10)
        system.read(1, at=60)
        system.run()
        assert system.history().reads()[0].value == "b"

    @pytest.mark.parametrize("seed", range(4))
    def test_regular_under_random_delays_and_replay(self, seed):
        system = make_system("replay", t=1, policy=RandomDelivery(seed=seed, max_latency=8))
        server = system.server(object_id(3))
        server.behavior = StaleEchoBehavior.freezing(server)
        system.write("a", at=0)
        system.read(1, at=4)
        system.write("b", at=40)
        system.read(2, at=44)
        system.read(1, at=90)
        system.run()
        verdict = check_swmr_regularity(system.history())
        assert verdict.ok, verdict.explanation


class TestFabricationAdversary:
    """Unauthenticated mode: forged sky-high timestamps must not win."""

    def test_fabricated_value_never_returned(self):
        system = make_system("unauthenticated", t=1,
                             behaviors={object_id(1): FabricatingBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "a"
        assert check_swmr_regularity(history).ok

    def test_fabrication_against_replay_mode_is_the_known_gap(self):
        """Replay mode trusts max-report: fabrication DOES poison it.

        This documents the trust-model split of DESIGN.md §2.2: replay mode
        is for the proofs' adversary class; fabrication resistance requires
        the unauthenticated mode (or secret tokens).
        """
        system = make_system("replay", t=1,
                             behaviors={object_id(1): FabricatingBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.history().reads()[0].value == "<fabricated>"

    def test_certification_pools_across_rounds(self):
        system = make_system("unauthenticated", t=2,
                             behaviors={
                                 object_id(1): FabricatingBehavior(),
                                 object_id(2): SilentBehavior(),
                             })
        system.write("a", at=0)
        system.write("b", at=60)
        system.read(1, at=120)
        system.run()
        assert system.history().reads()[0].value == "b"


class TestReaderWriteBack:
    def test_read_deposits_candidate_at_objects(self):
        system = make_system("replay")
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        deposited = [
            server.state["rb"].get("r1")
            for server in system.servers
            if server.state["rb"]
        ]
        assert deposited, "round two should write the candidate back"
        assert all(tv.value == "a" for tv in deposited)
