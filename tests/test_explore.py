"""Tests for the bounded schedule explorer (:mod:`repro.explore`)."""

import json
import pickle

import pytest

from repro.api import Cluster, protocol_specs
from repro.errors import ConfigurationError
from repro.explore import (
    ControlledDelivery,
    Explorer,
    HoldLink,
    ScheduleProbe,
    ScheduleWitness,
    canonical_links,
    minimize_decisions,
    run_schedule,
)
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.workloads.generator import OperationPlan


def underprovisioned_cluster():
    """The flagship refutation target: a fast-read stack below min_size(t).

    The system is provisioned for t=1 (S=4 = 3t+1) but suffers two
    stale-echo Byzantine objects — the paper's bound would require
    S ≥ 3·2+1 = 7 to tolerate them.
    """
    return (
        Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
        .with_faults("stale-echo", count=2)
        .with_operations([("write", "v1", 0), ("read", 1, 100)])
        .check("atomicity")
    )


def small_cluster(name="fast-regular", **kwargs):
    return (
        Cluster(name, t=1, **kwargs)
        .with_operations([("write", "v1", 0), ("read", 1, 120)])
    )


class TestHoldLink:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HoldLink(op=0, obj=1)
        with pytest.raises(ConfigurationError):
            HoldLink(op=1, obj=0)
        with pytest.raises(ConfigurationError):
            HoldLink(op=1, obj=1, round_no=0)

    def test_canonical_links_dedups_and_orders(self):
        links = (HoldLink(2, 1), HoldLink(1, 3), HoldLink(2, 1), HoldLink(1, 2))
        assert canonical_links(links) == (
            HoldLink(1, 2), HoldLink(1, 3), HoldLink(2, 1),
        )

    def test_json_round_trip(self):
        for link in (HoldLink(3, 2), HoldLink(1, 4, round_no=2)):
            assert HoldLink.from_json(link.to_json()) == link


class TestControlledDelivery:
    def _run(self, policy):
        # Links address operations by serial, so pin serials to plan order
        # exactly the way the trial/explore engines do.
        from repro.types import scoped_operation_serials

        with scoped_operation_serials():
            system = RegisterSystem(FastRegularProtocol(), t=1, S=4, policy=policy)
            system.write("v1", at=0)
            system.read(1, at=100)
            system.run()
            return system

    def test_holds_cut_the_link_both_directions(self):
        policy = ControlledDelivery(holds=[HoldLink(1, 3)])
        system = self._run(policy)
        assert policy.held_messages > 0
        # The held link never shows up as delivered ...
        assert HoldLink(1, 3) not in policy.delivered_links
        # ... and its messages are parked in transit, not lost.
        held = system.simulator.network.held_messages
        assert held and all(
            (message.message.dst.index == 3 and not message.message.is_reply)
            or (message.message.src.index == 3 and message.message.is_reply)
            for message in held
        )

    def test_records_expansion_alphabet(self):
        policy = ControlledDelivery()
        self._run(policy)
        # Operation granularity over 2 operations × 4 objects.
        assert len(policy.delivered_links) == 8
        assert all(link.round_no is None for link in policy.delivered_links)

    def test_round_granularity_links_carry_rounds(self):
        policy = ControlledDelivery(granularity="round")
        self._run(policy)
        assert all(link.round_no is not None for link in policy.delivered_links)
        # 2 ops × 4 objects × 2 rounds each for fast-regular.
        assert len(policy.delivered_links) == 16

    def test_granularity_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlledDelivery(holds=[HoldLink(1, 1, round_no=2)], granularity="operation")
        with pytest.raises(ConfigurationError):
            ControlledDelivery(holds=[HoldLink(1, 1)], granularity="round")
        with pytest.raises(ConfigurationError):
            ControlledDelivery(granularity="message")


class TestRunSchedule:
    def _probe(self, **overrides):
        base = dict(
            protocol="fast-regular",
            protocol_kwargs=(),
            t=1,
            S=4,
            n_readers=2,
            n_writers=1,
            keys=(),
            backend="single",
            allow_overfault=False,
            scenario=None,
            fault_groups=(),
            schedule=(),
            plans=(
                OperationPlan(kind="write", client_index=1, value="v1", at=0),
                OperationPlan(kind="read", client_index=1, value=None, at=120),
            ),
            checks=("regularity",),
        )
        base.update(overrides)
        return ScheduleProbe(**base)

    def test_empty_schedule_passes(self):
        outcome = run_schedule(self._probe())
        assert not outcome.violating
        assert outcome.completed == 2
        assert outcome.incomplete == 0 and outcome.dropped == 0
        assert outcome.held_messages == 0

    def test_purity_same_probe_same_outcome(self):
        probe = self._probe().with_decisions((HoldLink(2, 4),))
        assert run_schedule(probe) == run_schedule(probe)

    def test_probe_is_picklable(self):
        probe = self._probe().with_decisions((HoldLink(1, 2),))
        assert pickle.loads(pickle.dumps(probe)) == probe

    def test_blocking_holds_leave_operations_incomplete(self):
        # Holding a write's link to 2 of 4 objects starves its S−t quorum.
        outcome = run_schedule(
            self._probe().with_decisions((HoldLink(1, 1), HoldLink(1, 2)))
        )
        assert outcome.incomplete == 1 and outcome.completed == 1
        assert not outcome.violating  # an incomplete write is a legal partial run

    def test_blocked_clients_drop_later_invocations(self):
        # Same client reads twice; the first read is starved, so the second
        # planned invocation is dropped instead of violating the
        # sequential-client model.
        probe = self._probe(plans=(
            OperationPlan(kind="write", client_index=1, value="v1", at=0),
            OperationPlan(kind="read", client_index=1, value=None, at=120),
            OperationPlan(kind="read", client_index=1, value=None, at=700),
        ))
        starved = probe.with_decisions(
            (HoldLink(2, 1), HoldLink(2, 2), HoldLink(2, 3))
        )
        outcome = run_schedule(starved)
        assert outcome.dropped == 1
        assert outcome.incomplete == 1  # the starved read itself


class TestExplorerRefutation:
    def test_finds_and_minimizes_known_violation(self):
        result = underprovisioned_cluster().explore(max_holds=2)
        assert not result.certified
        assert result.stats.explored == 37  # 1 + 8 + C(8,2)
        assert result.alphabet == 8
        assert result.stats.violating == 3
        # Two root causes survive minimization-deduplication ...
        assert result.violations == 2
        first = result.witnesses[0]
        # ... and the flagship one shrinks to a single held link: the
        # write never reaches s3, so a reader quorum {s1, s2, s3} has no
        # correct holder of the completed write — a genuine stale read.
        assert first.decisions == (HoldLink(1, 3),)
        assert first.failures[0][0] == "atomicity"
        assert "stale read" in first.failures[0][1]

    def test_stop_on_violation_short_circuits(self):
        result = underprovisioned_cluster().explore(
            max_holds=2, stop_on_violation=True
        )
        assert result.violations == 1
        assert result.stats.explored < 37
        assert not result.certified and not result.exhausted

    def test_minimization_deduplicates_root_causes(self):
        result = underprovisioned_cluster().explore(max_holds=2)
        # Three violating schedules collapse onto two witnesses: the 2-link
        # discovery {op1↔s3, op2↔s4} delta-debugs down to {op1↔s3}, the
        # same root cause the depth-1 frontier already found.
        assert result.stats.violating == 3
        assert result.violations == 2
        assert result.stats.minimization_runs > 0

    def test_violation_requires_the_search(self):
        # The empty schedule is clean: the violation genuinely lives in the
        # schedule space, it is not a property of the configuration alone.
        result = underprovisioned_cluster().explore(max_holds=0)
        assert result.certified and result.stats.explored == 1


class TestExplorerCertification:
    def test_every_registered_swmr_protocol_certifies_at_small_bound(self):
        for spec in protocol_specs():
            if spec.backend != "single":
                continue
            cluster = Cluster(spec.name, t=1).with_operations(
                [("write", "v1", 0), ("read", 1, 120), ("read", 2, 240)]
            )
            result = cluster.explore(max_holds=1)
            assert result.certified, (
                f"{spec.name} violated {spec.default_check()} under "
                f"{result.witnesses and result.witnesses[0].describe()}"
            )
            assert result.exhausted and result.violations == 0

    def test_bfs_and_dfs_cover_the_same_space(self):
        cluster = small_cluster()
        bfs = cluster.explore(max_holds=2, granularity="round")
        dfs = cluster.explore(max_holds=2, granularity="round", strategy="dfs")
        assert bfs.stats.explored == dfs.stats.explored == 137
        assert bfs.certified and dfs.certified

    def test_round_granularity_prunes(self):
        result = small_cluster().explore(max_holds=3, granularity="round")
        assert result.certified
        # Depth-3 holds can starve a round's quorum, so its successor-round
        # links go inactive (sleep-set pruning) and some schedules collapse
        # onto identical wire traces (transcript-hash PoR).
        assert result.stats.pruned_inactive > 0
        assert result.stats.pruned_duplicate > 0

    def test_schedule_budget_bounds_the_sweep(self):
        result = small_cluster().explore(max_holds=2, max_schedules=5)
        assert result.stats.explored == 5
        assert not result.exhausted and not result.certified

    def test_event_budget_truncates_and_forfeits_certification(self):
        result = small_cluster().explore(max_holds=0, max_events=5)
        assert result.stats.truncated_runs == 1
        assert not result.certified

    def test_base_held_links_stay_out_of_the_alphabet(self):
        # A link the *configured* schedule already holds must not be
        # branched on: every such child would just duplicate its parent.
        scheduled = (
            Cluster("fast-regular", t=1)
            .with_operations([("write", "v1", 0), ("read", 1, 120)])
            .with_schedule((1, (1,)))
        )
        result = scheduled.explore(max_holds=1)
        assert result.certified
        # 2 ops × 4 objects minus the base-held write↔s1 link.
        assert result.alphabet == 7
        assert "op1 skips {s1}" in result.faults

    def test_mwmr_backend_explores_too(self):
        result = (
            Cluster("mw-abd", t=1, backend="multi-writer", n_writers=2)
            .with_operations([("write", "v1", 0), ("read", 1, 120)])
            .check("linearizability")
            .explore(max_holds=1)
        )
        assert result.certified and result.backend == "multi-writer"


class TestExplorerParallel:
    def test_parallel_results_byte_identical(self):
        cluster = underprovisioned_cluster()
        serial = cluster.explore(max_holds=2)
        parallel = cluster.explore(max_holds=2, parallel=True)
        assert (
            json.dumps(serial.to_dict(), sort_keys=True)
            == json.dumps(parallel.to_dict(), sort_keys=True)
        )


class TestWitness:
    def _witness(self):
        return underprovisioned_cluster().explore(max_holds=2).witnesses[0]

    def test_json_round_trip_is_identity(self):
        witness = self._witness()
        clone = ScheduleWitness.from_json(witness.to_json())
        assert clone.to_json() == witness.to_json()
        assert clone.decisions == witness.decisions
        assert clone.probe == witness.probe

    def test_replay_reproduces_byte_identically(self):
        witness = self._witness()
        outcome = witness.replay()
        assert outcome.failures == witness.failures
        assert outcome.trace_hash == witness.trace_hash
        assert witness.reproduces(outcome)

    def test_save_load_replay(self, tmp_path):
        witness = self._witness()
        path = witness.save(tmp_path / "witness.json")
        loaded = ScheduleWitness.load(path)
        assert loaded.reproduces()

    def test_tampered_witness_does_not_reproduce(self):
        data = json.loads(self._witness().to_json())
        data["decisions"] = []  # drop the held link: the violation vanishes
        tampered = ScheduleWitness.from_dict(data)
        assert not tampered.reproduces()

    def test_unknown_version_rejected(self):
        data = json.loads(self._witness().to_json())
        data["version"] = 999
        with pytest.raises(ConfigurationError):
            ScheduleWitness.from_dict(data)

    def test_non_primitive_plan_values_refused_loudly(self):
        # JSON would mutate a tuple value into a list, so the loaded
        # witness would replay a different schedule; serialization must
        # refuse instead of emitting a witness that cannot reproduce.
        result = (
            Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
            .with_faults("stale-echo", count=2)
            .with_operations([("write", ("v", 1), 0), ("read", 1, 100)])
            .check("atomicity")
            .explore(max_holds=1, stop_on_violation=True)
        )
        assert result.witnesses  # the violation itself is still found
        with pytest.raises(ConfigurationError):
            result.witnesses[0].to_dict()

    def test_minimize_decisions_directly(self):
        result = underprovisioned_cluster().explore(max_holds=2, minimize=False)
        bloated = next(
            witness for witness in result.witnesses if len(witness.decisions) == 2
            and HoldLink(1, 3) in witness.decisions
        )
        outcome = bloated.replay()
        minimal, final, runs = minimize_decisions(
            bloated.probe, bloated.decisions, outcome
        )
        assert minimal == (HoldLink(1, 3),)
        assert final.violating and runs > 0


class TestExplorerValidation:
    def test_probe_with_decisions_rejected(self):
        witness = underprovisioned_cluster().explore(
            max_holds=2, stop_on_violation=True
        ).witnesses[0]
        with pytest.raises(ConfigurationError):
            Explorer(witness.probe)  # the probe already carries decisions

    def test_bad_bounds_rejected(self):
        cluster = small_cluster()
        with pytest.raises(ConfigurationError):
            cluster.explore(max_holds=-1)
        with pytest.raises(ConfigurationError):
            cluster.explore(max_schedules=0)
        with pytest.raises(ConfigurationError):
            cluster.explore(strategy="random")
        with pytest.raises(ConfigurationError):
            cluster.explore(granularity="message")


@pytest.mark.slow
class TestExplorerStress:
    def test_deeper_search_finds_more_schedules_and_violations(self):
        cluster = (
            Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
            .with_faults("stale-echo", count=2)
            .with_operations([
                ("write", "v1", 0), ("write", "v2", 200),
                ("read", 1, 400), ("read", 2, 600),
            ])
            .check("atomicity")
        )
        result = cluster.explore(max_holds=3)
        assert not result.certified
        assert result.violations >= 2
        assert result.stats.explored > 500
        # Every emitted witness replays byte-identically.
        for witness in result.witnesses:
            assert witness.reproduces()
