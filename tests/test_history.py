"""Unit tests for history recording and the precedence order."""

import pytest

from repro.errors import SpecificationError
from repro.spec.history import History, HistoryRecorder, OperationRecord
from repro.types import BOTTOM, fresh_operation_id, reader_id, writer_id


def record(kind, client, inv_step, resp_step=None, value=None):
    return OperationRecord(
        op_id=fresh_operation_id(client, kind),
        kind=kind,
        client=client,
        invoked_at=inv_step,
        invocation_step=inv_step,
        value=value,
        responded_at=resp_step,
        response_step=resp_step,
    )


class TestRecorder:
    def test_round_trip(self):
        recorder = HistoryRecorder()
        op = fresh_operation_id(writer_id(), "write")
        recorder.record_invocation(op, kind="write", value="x", time=0)
        recorder.record_response(op, value="x", time=5)
        history = recorder.freeze()
        assert len(history) == 1
        assert history.writes()[0].complete

    def test_read_value_set_at_response(self):
        recorder = HistoryRecorder()
        op = fresh_operation_id(reader_id(1), "read")
        recorder.record_invocation(op, kind="read", value=None, time=0)
        recorder.record_response(op, value="seen", time=3)
        assert recorder.freeze().reads()[0].value == "seen"

    def test_duplicate_invocation_rejected(self):
        recorder = HistoryRecorder()
        op = fresh_operation_id(reader_id(1), "read")
        recorder.record_invocation(op, kind="read", value=None, time=0)
        with pytest.raises(SpecificationError):
            recorder.record_invocation(op, kind="read", value=None, time=1)

    def test_response_without_invocation_rejected(self):
        recorder = HistoryRecorder()
        with pytest.raises(SpecificationError):
            recorder.record_response(fresh_operation_id(reader_id(1), "read"), value=1, time=0)

    def test_duplicate_response_rejected(self):
        recorder = HistoryRecorder()
        op = fresh_operation_id(reader_id(1), "read")
        recorder.record_invocation(op, kind="read", value=None, time=0)
        recorder.record_response(op, value=1, time=1)
        with pytest.raises(SpecificationError):
            recorder.record_response(op, value=1, time=2)

    def test_incomplete_operation_frozen(self):
        recorder = HistoryRecorder()
        op = fresh_operation_id(reader_id(1), "read")
        recorder.record_invocation(op, kind="read", value=None, time=0)
        history = recorder.freeze()
        assert not history.reads(complete_only=True)
        assert history.reads(complete_only=False)


class TestPrecedence:
    def test_strict_precedence(self):
        first = record("write", writer_id(), 1, 2, "a")
        second = record("read", reader_id(1), 3, 4)
        assert first.precedes(second)
        assert not second.precedes(first)

    def test_overlap_is_concurrent(self):
        a = record("write", writer_id(), 1, 3, "a")
        b = record("read", reader_id(1), 2, 4)
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_incomplete_never_precedes(self):
        pending = record("write", writer_id(), 1, None, "a")
        later = record("read", reader_id(1), 5, 6)
        assert not pending.precedes(later)
        assert later.concurrent_with(pending)


class TestHistoryAccessors:
    def test_written_values_includes_bottom(self):
        history = History([
            record("write", writer_id(), 1, 2, "a"),
            record("write", writer_id(), 3, 4, "b"),
        ])
        assert history.written_values() == [BOTTOM, "a", "b"]

    def test_writes_sorted_by_invocation(self):
        w2 = record("write", writer_id(), 3, 4, "b")
        w1 = record("write", writer_id(), 1, 2, "a")
        history = History([w2, w1])
        assert [w.value for w in history.writes()] == ["a", "b"]

    def test_single_writer_detection(self):
        swmr = History([record("write", writer_id(), 1, 2, "a")])
        assert swmr.single_writer()

    def test_overlapping_ops_same_client_rejected(self):
        a = record("read", reader_id(1), 1, 5)
        b = record("read", reader_id(1), 3, 7)
        with pytest.raises(SpecificationError):
            History([a, b])

    def test_pending_then_new_op_same_client_rejected(self):
        a = record("read", reader_id(1), 1, None)
        b = record("read", reader_id(1), 3, 4)
        with pytest.raises(SpecificationError):
            History([a, b])

    def test_describe_renders_every_op(self):
        history = History([
            record("write", writer_id(), 1, 2, "a"),
            record("read", reader_id(1), 3, None),
        ])
        text = history.describe()
        assert "write" in text and "read" in text and "incomplete" in text
