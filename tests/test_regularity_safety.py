"""Unit tests for the regular and safe register checkers."""

from repro.spec.regularity import check_swmr_regularity
from repro.spec.safety import check_swmr_safety
from repro.spec.history import History, OperationRecord
from repro.types import BOTTOM, fresh_operation_id, reader_id, writer_id


def op(kind, client, inv, resp, value):
    return OperationRecord(
        op_id=fresh_operation_id(client, kind), kind=kind, client=client,
        invoked_at=inv, invocation_step=inv, value=value,
        responded_at=resp, response_step=resp,
    )


class TestRegularity:
    def test_last_complete_write_ok(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, "a"),
        ])
        assert check_swmr_regularity(history).ok

    def test_concurrent_write_value_ok(self):
        history = History([
            op("write", writer_id(), 1, 10, "a"),
            op("read", reader_id(1), 2, 3, "a"),
        ])
        assert check_swmr_regularity(history).ok

    def test_concurrent_old_value_ok(self):
        history = History([
            op("write", writer_id(), 1, 10, "a"),
            op("read", reader_id(1), 2, 3, BOTTOM),
        ])
        assert check_swmr_regularity(history).ok

    def test_stale_value_rejected(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("write", writer_id(), 3, 4, "b"),
            op("read", reader_id(1), 5, 6, "a"),
        ])
        verdict = check_swmr_regularity(history)
        assert not verdict.ok
        assert verdict.violated_property == 2

    def test_unwritten_value_rejected(self):
        history = History([op("read", reader_id(1), 1, 2, "ghost")])
        assert check_swmr_regularity(history).violated_property == 1

    def test_future_value_rejected(self):
        history = History([
            op("read", reader_id(1), 1, 2, "a"),
            op("write", writer_id(), 3, 4, "a"),
        ])
        assert check_swmr_regularity(history).violated_property == 3

    def test_new_old_inversion_ACCEPTED_by_regularity(self):
        """The defining gap between regular and atomic (paper Section 5)."""
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("write", writer_id(), 3, 20, "b"),
            op("read", reader_id(1), 4, 5, "b"),
            op("read", reader_id(2), 6, 7, "a"),  # inversion: fine for regular
        ])
        assert check_swmr_regularity(history).ok
        from repro.spec.atomicity import check_swmr_atomicity
        assert not check_swmr_atomicity(history).ok


class TestSafety:
    def test_solo_read_must_see_last_write(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, BOTTOM),
        ])
        verdict = check_swmr_safety(history)
        assert not verdict.ok

    def test_solo_read_correct_value_ok(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, "a"),
        ])
        assert check_swmr_safety(history).ok

    def test_concurrent_read_unconstrained(self):
        history = History([
            op("write", writer_id(), 1, 10, "a"),
            op("read", reader_id(1), 2, 3, "complete-garbage"),
        ])
        assert check_swmr_safety(history).ok

    def test_solo_read_before_any_write(self):
        history = History([op("read", reader_id(1), 1, 2, BOTTOM)])
        assert check_swmr_safety(history).ok

    def test_hierarchy_atomic_implies_regular_implies_safe(self):
        """Lamport's hierarchy on a batch of valid histories."""
        from repro.spec.atomicity import check_swmr_atomicity

        histories = [
            History([
                op("write", writer_id(), 1, 2, "a"),
                op("read", reader_id(1), 3, 4, "a"),
                op("write", writer_id(), 5, 6, "b"),
                op("read", reader_id(2), 7, 8, "b"),
            ]),
            History([op("read", reader_id(1), 1, 2, BOTTOM)]),
        ]
        for history in histories:
            assert check_swmr_atomicity(history).ok
            assert check_swmr_regularity(history).ok
            assert check_swmr_safety(history).ok
