"""Tests for the regular→atomic transformation — the paper's Section 5.

These are the headline upper-bound checks of the reproduction: the
transformation over the GV06-style substrate must give 2-round writes and
4-round reads; over the secret-token substrate, 3-round reads — and both
must pass the full atomicity checker under faults and concurrency.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import SilentBehavior
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.secret_token import SecretTokenProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.sim.network import RandomDelivery
from repro.spec.atomicity import check_swmr_atomicity
from repro.types import object_id


def gv_system(t=1, n_readers=2, behaviors=None, policy=None, trust_model="replay"):
    protocol = RegularToAtomicProtocol(
        lambda: FastRegularProtocol(trust_model=trust_model), n_readers=n_readers
    )
    return RegisterSystem(protocol, t=t, n_readers=n_readers,
                          behaviors=behaviors, policy=policy)


def token_system(t=1, n_readers=2, behaviors=None, policy=None):
    protocol = RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=n_readers)
    return RegisterSystem(protocol, t=t, n_readers=n_readers,
                          behaviors=behaviors, policy=policy)


class TestRoundComplexity:
    def test_gv_substrate_2w_4r(self):
        """The paper's matching implementation: 2-round writes, 4-round reads."""
        system = gv_system()
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.max_rounds("read") == 4

    def test_token_substrate_2w_3r(self):
        """The secret-value model optimum: 2-round writes, 3-round reads."""
        system = token_system()
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.max_rounds("read") == 3

    def test_round_counts_stable_under_silent_fault(self):
        system = gv_system(behaviors={object_id(1): SilentBehavior()})
        system.write("a", at=0)
        system.read(1, at=60)
        system.read(2, at=120)
        system.run()
        assert system.max_rounds("read") == 4
        assert len(system.history().complete()) == 3

    def test_advertised_rounds_match_measured(self):
        protocol = RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)
        assert protocol.write_rounds == 2
        assert protocol.read_rounds == 4
        token = RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=2)
        assert token.read_rounds == 3


class TestAtomicity:
    def test_sequential_chain(self):
        system = gv_system()
        system.write("a", at=0)
        system.read(1, at=60)
        system.write("b", at=120)
        system.read(2, at=180)
        system.read(1, at=240)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "b", "b"]
        assert check_swmr_atomicity(history).ok

    @pytest.mark.parametrize("seed", range(4))
    def test_atomic_under_random_delays(self, seed):
        system = gv_system(policy=RandomDelivery(seed=seed, max_latency=6), n_readers=3)
        system.write("a", at=0)
        system.read(1, at=5)
        system.write("b", at=60)
        system.read(2, at=63)
        system.read(3, at=66)
        system.read(1, at=160)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        assert verdict.ok, verdict.explanation

    def test_read_monotonicity_via_write_back(self):
        """The R+1-register write-back is what forbids new/old inversion."""
        system = gv_system(n_readers=2, policy=RandomDelivery(seed=11, max_latency=9))
        system.write("a", at=0)
        system.write("b", at=50)
        system.read(1, at=52)   # may see a or b
        system.read(2, at=110)  # succeeds rd1: must not see older than rd1
        system.run()
        assert check_swmr_atomicity(system.history()).ok

    def test_atomic_with_stale_echo_byzantine(self):
        system = gv_system(t=1)
        server = system.server(object_id(2))
        server.behavior = StaleEchoBehavior.freezing(server)
        system.write("a", at=0)
        system.read(1, at=60)
        system.write("b", at=120)
        system.read(2, at=180)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "b"]
        assert check_swmr_atomicity(history).ok

    def test_token_substrate_atomic_with_fabricator(self):
        system = token_system(behaviors={object_id(3): FabricatingBehavior()})
        system.write("a", at=0)
        system.read(1, at=60)
        system.read(2, at=120)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "a"]
        assert check_swmr_atomicity(history).ok


class TestConfiguration:
    def test_needs_at_least_one_reader(self):
        with pytest.raises(ConfigurationError):
            RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=0)

    def test_unknown_reader_rejected_at_read(self):
        system = gv_system(n_readers=2)
        with pytest.raises(ConfigurationError):
            system.read(5)

    def test_register_per_reader_plus_writer(self):
        protocol = RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=3)
        assert set(protocol._registers) == {"W", "R1", "R2", "R3"}
