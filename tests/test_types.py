"""Unit tests for the ground types."""

import pytest
from hypothesis import given, strategies as st

from repro.types import (
    BOTTOM,
    ProcessId,
    Role,
    TaggedValue,
    Timestamp,
    fresh_operation_id,
    object_id,
    object_ids,
    reader_id,
    reader_ids,
    writer_id,
)


class TestProcessId:
    def test_object_id_str(self):
        assert str(object_id(3)) == "s3"

    def test_reader_id_str(self):
        assert str(reader_id(2)) == "r2"

    def test_writer_id_str(self):
        assert str(writer_id()) == "w"

    def test_roles(self):
        assert object_id(1).role is Role.OBJECT
        assert reader_id(1).role is Role.READER
        assert writer_id().role is Role.WRITER

    def test_object_ids_count_and_order(self):
        ids = object_ids(5)
        assert len(ids) == 5
        assert ids == tuple(sorted(ids))

    def test_reader_ids(self):
        assert [str(r) for r in reader_ids(3)] == ["r1", "r2", "r3"]

    def test_one_based_indexing_enforced(self):
        with pytest.raises(ValueError):
            object_id(0)
        with pytest.raises(ValueError):
            reader_id(-1)

    def test_ids_hashable_and_distinct(self):
        assert len({object_id(1), object_id(2), reader_id(1), writer_id()}) == 4

    def test_same_id_equal(self):
        assert object_id(7) == object_id(7)


class TestTimestamp:
    def test_zero(self):
        assert Timestamp.zero() == Timestamp(0, 0)

    def test_next_increments_seq(self):
        assert Timestamp.zero().next_for() == Timestamp(1, 0)

    def test_next_sets_writer(self):
        assert Timestamp(4, 0).next_for(writer=2) == Timestamp(5, 2)

    def test_ordering_by_seq(self):
        assert Timestamp(1, 5) < Timestamp(2, 0)

    def test_writer_breaks_ties(self):
        assert Timestamp(3, 1) < Timestamp(3, 2)

    def test_str_plain_and_mw(self):
        assert str(Timestamp(4)) == "4"
        assert str(Timestamp(4, 2)) == "4.2"

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_order_total_on_seq(self, a, b):
        ta, tb = Timestamp(a), Timestamp(b)
        assert (ta < tb) == (a < b)


class TestTaggedValue:
    def test_initial(self):
        initial = TaggedValue.initial()
        assert initial.ts == Timestamp.zero()
        assert initial.value == BOTTOM

    def test_newer_than(self):
        old = TaggedValue(Timestamp(1), "a")
        new = TaggedValue(Timestamp(2), "b")
        assert new.newer_than(old)
        assert not old.newer_than(new)
        assert not old.newer_than(old)

    def test_hashable(self):
        pair = TaggedValue(Timestamp(1), "a")
        assert pair in {pair}

    def test_equality_on_both_fields(self):
        assert TaggedValue(Timestamp(1), "a") != TaggedValue(Timestamp(1), "b")


class TestOperationId:
    def test_serials_unique(self):
        a = fresh_operation_id(reader_id(1), "read")
        b = fresh_operation_id(reader_id(1), "read")
        assert a != b
        assert a.serial != b.serial

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            fresh_operation_id(reader_id(1), "scan")

    def test_str_mentions_kind_and_client(self):
        op = fresh_operation_id(writer_id(), "write")
        assert "write" in str(op)
        assert "w" in str(op)
