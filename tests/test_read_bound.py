"""Tests for the executable read lower bound (Proposition 1)."""

import pytest

from repro.core.read_bound import ReadLowerBoundConstruction
from repro.errors import ConstructionEscape
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.strawman import TwoRoundReadProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol


class TestViolationCertificates:
    @pytest.mark.parametrize("t,k", [(1, 1), (1, 2), (2, 2), (1, 3), (3, 1)])
    def test_strawman_always_convicted(self, t, k):
        construction = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=k), t=t
        )
        outcome = construction.execute()
        assert outcome.certificate.valid, outcome.certificate.render()
        assert outcome.certificate.verdict.violated_property == 1

    def test_final_run_has_no_write(self):
        outcome = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=2), t=1
        ).execute()
        assert "write" not in outcome.final_run.ops
        assert outcome.final_run.returned("rd7") == 1

    def test_at_most_t_byzantine_objects_per_run(self):
        outcome = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=2), t=2
        ).execute(keep_runs=True)
        assert outcome.kept_runs
        for run in outcome.kept_runs:
            assert run.malicious_object_count() <= 2, run.name

    def test_exactly_four_readers_used(self):
        outcome = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=3), t=1
        ).execute(keep_runs=True)
        for run in outcome.kept_runs:
            readers = {op.client for op in run.ops.values() if op.kind == "read"}
            assert len(readers) <= 4

    def test_works_at_non_maximal_s(self):
        """Proposition 1 needs only S <= 4t: try S = 3t+1."""
        construction = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=2), t=2, S=7
        )
        outcome = construction.execute()
        assert outcome.certificate.valid

    def test_run_count_matches_4k_minus_1_chain(self):
        k = 2
        outcome = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=k), t=1
        ).execute()
        # wr + (pr_n, Δpr_n) for n = 1..4k-1
        assert outcome.runs_executed == 1 + 2 * (4 * k - 1)

    def test_certificate_render_is_auditable(self):
        outcome = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=1), t=1
        ).execute()
        text = outcome.certificate.render()
        assert "read-lower-bound" in text
        assert "certificate valid: True" in text
        assert "[ok]" in text and "[FAILED]" not in text


class TestTightness:
    def test_four_round_read_protocol_escapes(self):
        """The matching implementation survives: its reads refuse to finish
        in two rounds, so the construction cannot even form pr_1."""
        construction = ReadLowerBoundConstruction(
            lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=4),
            t=1,
        )
        with pytest.raises(ConstructionEscape) as excinfo:
            construction.execute()
        assert "pr1" in str(excinfo.value)


class TestEarlyViolation:
    def test_certified_first_victim_convicted_early(self):
        """A certified-first selection returns stale values inside some pr_n:
        the construction must still produce a valid certificate."""
        from repro.registers.strawman import (
            SM_QUERY,
            SM_WRITE_BACK,
            _StrawmanBase,
        )
        from repro.registers.timestamps import max_candidate, pooled_voucher_counts
        from repro.sim.rounds import ReplyRule, RoundSpec

        class CertifiedFirst(TwoRoundReadProtocol):
            name = "strawman-2r-certified"

            def read_generator(self, ctx, reader):
                quorum = ctx.wait_quorum
                certify = ctx.certify

                def select(pool):
                    counts = pooled_voucher_counts(pool, fields=("w", "wb"))
                    certified = [p for p, n in counts.items() if n >= certify]
                    if certified:
                        return max_candidate(certified)
                    return max_candidate(counts.keys())

                def generator():
                    first = yield RoundSpec(tag=SM_QUERY, payload={},
                                            rule=ReplyRule(min_count=quorum))
                    candidate = select([first.replies])
                    second = yield RoundSpec(tag=SM_WRITE_BACK, payload={"tv": candidate},
                                             rule=ReplyRule(min_count=quorum))
                    return select([first.replies, second.replies]).value

                return generator()

        outcome = ReadLowerBoundConstruction(
            lambda: CertifiedFirst(write_rounds=2), t=1
        ).execute()
        assert outcome.certificate.valid, outcome.certificate.render()
        assert not outcome.certificate.verdict.ok
