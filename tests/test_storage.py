"""Unit tests for the repro.storage durability seam.

Covers the codec (type-tagged JSON round-trips), the journal semantics
shared by :class:`MemJournal` and :class:`DirStorage` (write-ahead
watermark, fsync lag, torn writes, recovery repair), the on-disk store's
reopen-and-replay path, the :class:`DurableObjectHandler` write-ahead
wrapper, and the :class:`StorageRuntime` factory.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.sim.network import Message
from repro.storage import (
    DirStorage,
    DurableObjectHandler,
    MemJournal,
    SpaceMeter,
    StorageRuntime,
    count_timestamps,
    decode_state,
    encode_state,
    resolve_durability,
)
from repro.storage.stable import _frame_size
from repro.types import OperationId, ProcessId, Role, TaggedValue, Timestamp


def make_dir_store(tmp_path, name="s1.log"):
    return DirStorage(tmp_path / name)


BOTH_STORES = ["mem", "dir"]


def make_store(kind, tmp_path):
    return MemJournal() if kind == "mem" else make_dir_store(tmp_path)


class TestCodec:
    def test_scalars_round_trip(self):
        for value in ("v", 7, 3.5, True, None):
            assert decode_state(encode_state(value)) == value

    def test_rich_state_round_trips(self):
        ts = Timestamp(seq=4, writer=2)
        state = {
            "current": TaggedValue(ts=ts, value="v4"),
            "history": [TaggedValue(ts=Timestamp(seq=1), value="v1"), None],
            "pair": (1, "two"),
            "voters": {ProcessId(Role.OBJECT.value, 0), ProcessId(Role.OBJECT.value, 2)},
            "count": 3,
        }
        decoded = decode_state(encode_state(state))
        assert decoded == state
        assert isinstance(decoded["pair"], tuple)
        assert isinstance(decoded["voters"], set)

    def test_encoding_is_deterministic(self):
        state = {"a": Timestamp(seq=1), "b": {2, 1, 3}}
        assert encode_state(state) == encode_state(state)

    def test_count_timestamps_walks_containers(self):
        state = {
            "current": TaggedValue(ts=Timestamp(seq=2, writer=1), value="x"),
            "log": [Timestamp(seq=1), Timestamp(seq=2, writer=1)],
            "nested": {"deep": (Timestamp(seq=3),)},
        }
        assert count_timestamps(state) == {
            Timestamp(seq=1),
            Timestamp(seq=2, writer=1),
            Timestamp(seq=3),
        }


class TestJournalSemantics:
    @pytest.mark.parametrize("kind", BOTH_STORES)
    def test_put_get_keys_sync(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.put("a", b"1")
        store.put("b", b"2")
        store.put("a", b"3")
        store.sync()
        assert store.get("a") == b"3"
        assert store.get("b") == b"2"
        assert store.get("missing") is None
        assert store.keys() == ("a", "b")
        stats = store.stats()
        assert stats.records == 3 and stats.synced_records == 3
        store.close()

    @pytest.mark.parametrize("kind", BOTH_STORES)
    def test_crash_loses_exactly_the_unsynced_suffix(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.put("a", b"1")
        store.sync()
        store.put("a", b"2")
        store.put("b", b"3")  # acknowledged, never synced
        assert store.crash() == 2
        image = store.recover()
        assert image.state == {"a": b"1"}
        assert image.replayed == 1 and image.discarded == 0
        assert not image.torn_detected
        store.close()

    @pytest.mark.parametrize("kind", BOTH_STORES)
    def test_fsync_lag_keeps_suffix_acknowledged_but_volatile(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.lag = 1
        for i in range(3):
            store.put("a", b"v%d" % i)
            store.sync()
        # The live machine sees v2; only v0, v1 ever became durable.
        assert store.get("a") == b"v2"
        assert store.stats().synced_records == 2
        store.crash()
        image = store.recover()
        assert image.state == {"a": b"v1"}
        assert image.replayed == 2
        store.close()

    @pytest.mark.parametrize("kind", BOTH_STORES)
    def test_torn_write_detected_and_discarded(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.put("a", b"old")
        store.put("a", b"new")
        store.sync()
        assert store.tear_last()
        image = store.recover()
        assert image.torn_detected
        assert image.state == {"a": b"old"}
        assert image.discarded == 1
        # recover() repaired the journal: appends after it stay parseable.
        store.put("a", b"post")
        store.sync()
        assert store.recover().state == {"a": b"post"}
        store.close()

    @pytest.mark.parametrize("kind", BOTH_STORES)
    def test_frozen_store_rejects_appends(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.frozen = True
        with pytest.raises(StorageError, match="frozen"):
            store.put("a", b"1")
        store.close()

    @pytest.mark.parametrize("kind", BOTH_STORES)
    def test_gc_compacts_to_latest_per_key(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        for i in range(5):
            store.put("a", b"a%d" % i)
        store.put("b", b"b0")
        store.sync()
        before = store.stats().retained_bytes
        freed = store.gc()
        after = store.stats()
        assert freed == before - after.retained_bytes > 0
        assert after.records == 2
        assert store.records() == (("a", b"a4"), ("b", b"b0"))
        store.close()

    def test_mem_and_dir_account_identical_bytes(self, tmp_path):
        mem, disk = MemJournal(), make_dir_store(tmp_path)
        for store in (mem, disk):
            store.put("ts", b'{"seq":1}')
            store.put("value", b'"v1"')
            store.sync()
        assert mem.stats() == disk.stats()
        assert disk.path.stat().st_size == disk.stats().retained_bytes
        disk.close()


class TestDirStorage:
    def test_reopen_replays_the_log(self, tmp_path):
        path = tmp_path / "obj.log"
        store = DirStorage(path)
        store.put("a", b"1")
        store.put("b", b"2")
        store.sync()
        store.close()
        reopened = DirStorage(path)
        assert reopened.get("a") == b"1"
        assert reopened.keys() == ("a", "b")
        assert reopened.stats().synced_records == 2
        reopened.close()

    def test_reopen_truncates_a_torn_tail(self, tmp_path):
        path = tmp_path / "obj.log"
        store = DirStorage(path)
        store.put("a", b"good")
        store.sync()
        store.close()
        intact = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x30GARBAGE")  # header promising more bytes
        reopened = DirStorage(path)
        assert reopened.records() == (("a", b"good"),)
        assert path.stat().st_size == intact
        reopened.close()

    def test_round_trip_determinism(self, tmp_path):
        """Same journal contents ⇒ byte-identical files and recovered state."""
        writes = [("a", b"1"), ("b", b"2"), ("a", b"3")]
        paths = []
        for name in ("one.log", "two.log"):
            store = DirStorage(tmp_path / name)
            for key, value in writes:
                store.put(key, value)
                store.sync()
            store.close()
            paths.append(tmp_path / name)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        first, second = DirStorage(paths[0]), DirStorage(paths[1])
        assert first.recover() == second.recover()
        first.close(), second.close()

    def test_crash_truncates_the_file(self, tmp_path):
        store = DirStorage(tmp_path / "obj.log")
        store.put("a", b"1")
        store.sync()
        synced_size = store.path.stat().st_size
        store.put("a", b"2")
        store._fh.flush()
        assert store.path.stat().st_size > synced_size
        store.crash()
        assert store.path.stat().st_size == synced_size
        store.close()


class StubHandler:
    """Minimal ObjectHandler: counts messages into its state."""

    def initial_state(self):
        return {"count": 0, "latest": None}

    def handle(self, state, message):
        state["count"] += 1
        state["latest"] = message.payload.get("value")
        return {"ack": state["count"]}


def _msg(value):
    writer = ProcessId(Role.WRITER.value, 0)
    return Message(
        src=writer,
        dst=ProcessId(Role.OBJECT.value, 0),
        op=OperationId(client=writer, kind="write", serial=0),
        round_no=1,
        tag="STORE",
        payload={"value": value},
    )


class TestDurableObjectHandler:
    def test_persists_changed_keys_before_reply(self):
        store = MemJournal()
        handler = DurableObjectHandler(StubHandler(), store)
        state = handler.initial_state()
        reply = handler.handle(state, _msg("v1"))
        assert reply == {"ack": 1}
        assert decode_state(store.get("count")) == 1
        assert decode_state(store.get("latest")) == "v1"
        assert store.stats().synced_records == store.stats().records

    def test_unchanged_keys_are_not_rewritten(self):
        store = MemJournal()
        handler = DurableObjectHandler(StubHandler(), store)
        state = handler.initial_state()
        handler.handle(state, _msg("v1"))
        records_after_first = store.stats().records
        handler.handle(state, _msg("v1"))  # count changes, latest does not
        assert store.stats().records == records_after_first + 1

    def test_recovered_state_replays_journal_over_initial_state(self):
        store = MemJournal()
        handler = DurableObjectHandler(StubHandler(), store)
        state = handler.initial_state()
        handler.handle(state, _msg("v1"))
        handler.handle(state, _msg("v2"))
        recovered, image = handler.recovered_state()
        assert recovered == {"count": 2, "latest": "v2"}
        assert image.replayed == store.stats().records

    def test_frozen_store_skips_persistence(self):
        store = MemJournal()
        handler = DurableObjectHandler(StubHandler(), store)
        state = handler.initial_state()
        store.frozen = True
        handler.handle(state, _msg("v1"))  # no StorageError: persistence gated
        assert store.stats().records == 0


class TestStorageRuntime:
    def test_resolve_durability(self):
        assert resolve_durability("none") == "none"
        assert resolve_durability("mem") == "mem"
        with pytest.raises(ConfigurationError, match="durability"):
            resolve_durability("disk")

    def test_create_none_returns_none(self):
        assert StorageRuntime.create("none") is None

    @pytest.mark.parametrize("durability,store_type", [("mem", MemJournal), ("dir", DirStorage)])
    def test_wrap_assigns_one_store_per_object(self, durability, store_type):
        runtime = StorageRuntime.create(durability)
        pid = ProcessId(Role.OBJECT.value, 0)
        wrapped = runtime.wrap(pid, StubHandler())
        assert isinstance(wrapped, DurableObjectHandler)
        assert type(wrapped.store) is store_type
        with pytest.raises(ConfigurationError, match="already"):
            runtime.wrap(pid, StubHandler())
        runtime.close()

    def test_meter_reports_gc_shrink(self):
        runtime = StorageRuntime.create("mem")
        handler = runtime.wrap(ProcessId(Role.OBJECT.value, 0), StubHandler())
        state = handler.initial_state()
        for i in range(6):
            handler.handle(state, _msg(f"v{i}"))
        report = SpaceMeter(runtime).measure()
        assert report["durability"] == "mem"
        assert report["gc_retained_bytes"] < report["retained_bytes"]
        assert report["gc_freed_bytes"] == (
            report["retained_bytes"] - report["gc_retained_bytes"]
        )
        assert report["gc_retained_records"] == 2  # one per state key
        runtime.close()


def test_frame_size_matches_physical_bytes(tmp_path):
    store = DirStorage(tmp_path / "obj.log")
    store.put("key", b"value")
    store.sync()
    assert store.path.stat().st_size == _frame_size("key", b"value")
    store.close()
