"""Unit and property tests for the general linearizability checker."""

import random

from hypothesis import given, settings, strategies as st

from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.history import History, OperationRecord
from repro.spec.linearizability import (
    is_linearizable,
    is_linearizable_reference,
    linearization_witness,
)
from repro.types import BOTTOM, ProcessId, fresh_operation_id, reader_id, writer_id


def op(kind, client, inv, resp, value):
    return OperationRecord(
        op_id=fresh_operation_id(client, kind), kind=kind, client=client,
        invoked_at=inv, invocation_step=inv, value=value,
        responded_at=resp, response_step=resp,
    )


def mw(index):
    return ProcessId("writer", index)


class TestBasics:
    def test_empty(self):
        assert is_linearizable(History([]))

    def test_sequential(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, "a"),
        ])
        assert is_linearizable(history)

    def test_stale_read_not_linearizable(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("write", writer_id(), 3, 4, "b"),
            op("read", reader_id(1), 5, 6, "a"),
        ])
        assert not is_linearizable(history)

    def test_pending_write_may_take_effect(self):
        history = History([
            op("write", writer_id(), 1, None, "a"),
            op("read", reader_id(1), 2, 3, "a"),
        ])
        assert is_linearizable(history)

    def test_pending_write_may_not_take_effect(self):
        history = History([
            op("write", writer_id(), 1, None, "a"),
            op("read", reader_id(1), 2, 3, BOTTOM),
        ])
        assert is_linearizable(history)

    def test_multi_writer_interleaving(self):
        history = History([
            op("write", mw(1), 1, 10, "a"),
            op("write", mw(2), 2, 11, "b"),
            op("read", reader_id(1), 12, 13, "a"),
        ])
        # 'b' can linearize before 'a' (they overlap): read of 'a' is fine.
        assert is_linearizable(history)

    def test_multi_writer_contradictory_reads(self):
        # rd1 sees a-then-b order, rd2 sees b-then-a; both sequential: impossible.
        history = History([
            op("write", mw(1), 1, 2, "a"),
            op("write", mw(2), 3, 4, "b"),
            op("read", reader_id(1), 5, 6, "a"),
        ])
        assert not is_linearizable(history)

    def test_witness_matches_decision(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, "a"),
        ])
        witness = linearization_witness(history)
        assert witness is not None
        assert [w.value for w in witness] == ["a", "a"]

    def test_witness_none_when_impossible(self):
        history = History([op("read", reader_id(1), 1, 2, "ghost")])
        assert linearization_witness(history) is None


def _random_history(draw_ops):
    """Build a well-formed SWMR history from generated intervals."""
    records = []
    step = 0
    next_free = {"w": 0, 1: 0, 2: 0}
    for kind, client_key, value, gap, duration in draw_ops:
        start = max(next_free[client_key], step) + gap + 1
        end = start + duration + 1
        step = start
        client = writer_id() if client_key == "w" else reader_id(client_key)
        records.append(op(kind, client, start, end, value))
        next_free[client_key] = end
    return History(records)


@st.composite
def swmr_histories(draw):
    n = draw(st.integers(1, 6))
    entries = []
    write_values = iter(f"v{i}" for i in range(1, 10))
    for _ in range(n):
        if draw(st.booleans()):
            entries.append(("write", "w", next(write_values),
                            draw(st.integers(0, 3)), draw(st.integers(0, 6))))
        else:
            value = draw(st.sampled_from([BOTTOM, "v1", "v2", "v3"]))
            entries.append(("read", draw(st.sampled_from([1, 2])), value,
                            draw(st.integers(0, 3)), draw(st.integers(0, 6))))
    return _random_history(entries)


class TestCrossValidation:
    @given(swmr_histories())
    @settings(max_examples=120, deadline=None)
    def test_swmr_checker_agrees_with_wing_gong(self, history):
        """The fast SWMR checker and the general search must agree.

        This is the strongest correctness evidence for both: they implement
        the same specification through entirely different algorithms.
        """
        assert check_swmr_atomicity(history).ok == is_linearizable(history)


def _concurrent_history(seed, n_clients=6, ops_per_client=2, n_values=3):
    """Overlap-heavy multi-writer history with duplicated write values.

    Duplicate values multiply the feasible frontiers, which is exactly
    where the memoized search (and any bug in its memo keys) lives.
    """
    rng = random.Random(seed)
    records = []
    for index in range(n_clients):
        is_writer = index < n_clients // 2
        client = ProcessId("writer", index + 1) if is_writer else reader_id(index + 1)
        clock = rng.randint(1, 4)
        for _ in range(ops_per_client):
            duration = rng.randint(5, 25)
            value = f"v{rng.randint(1, n_values)}"
            responded = None if is_writer and rng.random() < 0.1 else clock + duration
            records.append(
                op("write" if is_writer else "read", client, clock, responded, value)
            )
            if responded is None:
                break  # a client never invokes past an incomplete operation
            clock = responded + rng.randint(1, 3)
    return History(records)


class TestBitmaskPinnedToReference:
    """The bitmask core must be indistinguishable from the frozenset oracle."""

    @given(swmr_histories())
    @settings(max_examples=120, deadline=None)
    def test_agrees_on_random_swmr_histories(self, history):
        assert is_linearizable(history) == is_linearizable_reference(history)

    def test_agrees_on_concurrent_multiwriter_histories(self):
        for seed in range(150):
            history = _concurrent_history(seed)
            assert is_linearizable(history) == is_linearizable_reference(history), (
                f"bitmask and reference disagree on seed {seed}:\n{history.describe()}"
            )

    def test_witness_decision_matches_and_replays(self):
        """A returned witness must actually *be* a linearization."""
        for seed in range(80):
            history = _concurrent_history(seed)
            witness = linearization_witness(history)
            assert (witness is not None) == is_linearizable(history)
            if witness is None:
                continue
            # Every complete operation appears exactly once (dropped pending
            # writes are allowed to be absent).
            complete_ids = {r.op_id for r in history.records if r.complete}
            witness_ids = [r.op_id for r in witness]
            assert len(witness_ids) == len(set(witness_ids))
            assert complete_ids <= set(witness_ids)
            # Precedence is respected and every read sees the latest write.
            positions = {r.op_id: i for i, r in enumerate(witness)}
            for a in witness:
                for b in witness:
                    if a.precedes(b):
                        assert positions[a.op_id] < positions[b.op_id]
            current = BOTTOM
            for record in witness:
                if record.kind == "write":
                    current = record.value
                else:
                    assert record.value == current
