"""Unit and property tests for the general linearizability checker."""

from hypothesis import given, settings, strategies as st

from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.history import History, OperationRecord
from repro.spec.linearizability import is_linearizable, linearization_witness
from repro.types import BOTTOM, ProcessId, fresh_operation_id, reader_id, writer_id


def op(kind, client, inv, resp, value):
    return OperationRecord(
        op_id=fresh_operation_id(client, kind), kind=kind, client=client,
        invoked_at=inv, invocation_step=inv, value=value,
        responded_at=resp, response_step=resp,
    )


def mw(index):
    return ProcessId("writer", index)


class TestBasics:
    def test_empty(self):
        assert is_linearizable(History([]))

    def test_sequential(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, "a"),
        ])
        assert is_linearizable(history)

    def test_stale_read_not_linearizable(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("write", writer_id(), 3, 4, "b"),
            op("read", reader_id(1), 5, 6, "a"),
        ])
        assert not is_linearizable(history)

    def test_pending_write_may_take_effect(self):
        history = History([
            op("write", writer_id(), 1, None, "a"),
            op("read", reader_id(1), 2, 3, "a"),
        ])
        assert is_linearizable(history)

    def test_pending_write_may_not_take_effect(self):
        history = History([
            op("write", writer_id(), 1, None, "a"),
            op("read", reader_id(1), 2, 3, BOTTOM),
        ])
        assert is_linearizable(history)

    def test_multi_writer_interleaving(self):
        history = History([
            op("write", mw(1), 1, 10, "a"),
            op("write", mw(2), 2, 11, "b"),
            op("read", reader_id(1), 12, 13, "a"),
        ])
        # 'b' can linearize before 'a' (they overlap): read of 'a' is fine.
        assert is_linearizable(history)

    def test_multi_writer_contradictory_reads(self):
        # rd1 sees a-then-b order, rd2 sees b-then-a; both sequential: impossible.
        history = History([
            op("write", mw(1), 1, 2, "a"),
            op("write", mw(2), 3, 4, "b"),
            op("read", reader_id(1), 5, 6, "a"),
        ])
        assert not is_linearizable(history)

    def test_witness_matches_decision(self):
        history = History([
            op("write", writer_id(), 1, 2, "a"),
            op("read", reader_id(1), 3, 4, "a"),
        ])
        witness = linearization_witness(history)
        assert witness is not None
        assert [w.value for w in witness] == ["a", "a"]

    def test_witness_none_when_impossible(self):
        history = History([op("read", reader_id(1), 1, 2, "ghost")])
        assert linearization_witness(history) is None


def _random_history(draw_ops):
    """Build a well-formed SWMR history from generated intervals."""
    records = []
    step = 0
    next_free = {"w": 0, 1: 0, 2: 0}
    for kind, client_key, value, gap, duration in draw_ops:
        start = max(next_free[client_key], step) + gap + 1
        end = start + duration + 1
        step = start
        client = writer_id() if client_key == "w" else reader_id(client_key)
        records.append(op(kind, client, start, end, value))
        next_free[client_key] = end
    return History(records)


@st.composite
def swmr_histories(draw):
    n = draw(st.integers(1, 6))
    entries = []
    write_values = iter(f"v{i}" for i in range(1, 10))
    for _ in range(n):
        if draw(st.booleans()):
            entries.append(("write", "w", next(write_values),
                            draw(st.integers(0, 3)), draw(st.integers(0, 6))))
        else:
            value = draw(st.sampled_from([BOTTOM, "v1", "v2", "v3"]))
            entries.append(("read", draw(st.sampled_from([1, 2])), value,
                            draw(st.integers(0, 3)), draw(st.integers(0, 6))))
    return _random_history(entries)


class TestCrossValidation:
    @given(swmr_histories())
    @settings(max_examples=120, deadline=None)
    def test_swmr_checker_agrees_with_wing_gong(self, history):
        """The fast SWMR checker and the general search must agree.

        This is the strongest correctness evidence for both: they implement
        the same specification through entirely different algorithms.
        """
        assert check_swmr_atomicity(history).ok == is_linearizable(history)
