"""Unit tests for violation certificates and evidence rendering."""

from repro.core.certificates import EvidenceLine, ViolationCertificate
from repro.spec.atomicity import AtomicityVerdict


def make_certificate(ok_verdict=False):
    verdict = AtomicityVerdict(
        ok=ok_verdict,
        violated_property=None if ok_verdict else 1,
        explanation="" if ok_verdict else "read returned 1, never written",
    )
    return ViolationCertificate(
        construction="read-lower-bound (Proposition 1)",
        protocol="strawman-2r-read",
        parameters={"t": 1, "S": 4, "k": 2, "R": 4},
        final_run="Δpr7",
        verdict=verdict,
        history_description="  read[r3#1] -> 1 [1, 2]",
    )


class TestEvidence:
    def test_line_rendering(self):
        ok = EvidenceLine(run="pr1", claim="rd1 returns 1", verified=True)
        bad = EvidenceLine(run="pr2", claim="rd2 returns 1", verified=False)
        assert str(ok).startswith("[ok]")
        assert str(bad).startswith("[FAILED]")

    def test_add_appends(self):
        certificate = make_certificate()
        certificate.add("wr", "write completes")
        certificate.add("pr1", "claim fails", verified=False)
        assert len(certificate.evidence) == 2
        assert not certificate.evidence[1].verified


class TestValidity:
    def test_valid_needs_violation_and_clean_evidence(self):
        certificate = make_certificate(ok_verdict=False)
        certificate.add("pr1", "fine")
        assert certificate.valid

    def test_invalid_when_no_violation(self):
        certificate = make_certificate(ok_verdict=True)
        certificate.add("pr1", "fine")
        assert not certificate.valid

    def test_invalid_when_any_evidence_failed(self):
        certificate = make_certificate(ok_verdict=False)
        certificate.add("pr1", "broken", verified=False)
        assert not certificate.valid


class TestRendering:
    def test_render_contains_all_sections(self):
        certificate = make_certificate()
        certificate.add("pr1", "rd1 returns 1")
        text = certificate.render()
        assert "violation certificate" in text
        assert "strawman-2r-read" in text
        assert "Δpr7" in text
        assert "atomicity property 1" in text
        assert "[ok] pr1" in text
        assert "certificate valid: True" in text

    def test_render_reports_invalid(self):
        certificate = make_certificate(ok_verdict=True)
        assert "certificate valid: False" in certificate.render()
