"""Tests for the ``python -m repro`` command-line reproducer."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_summary_runs_clean(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "Proposition 1" in out and "VALID" in out
        assert "Lemma 1" in out

    def test_read_bound_command(self, capsys):
        assert main(["read-bound", "--t", "1", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid: True" in out

    def test_write_bound_command(self, capsys):
        assert main(["write-bound", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid: True" in out

    def test_latency_command(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "abd" in out and "atomic(fast-regular)" in out

    def test_recurrence_command(self, capsys):
        assert main(["recurrence", "--max-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "t_k" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
