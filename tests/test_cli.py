"""Tests for the ``python -m repro`` command-line reproducer."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_summary_runs_clean(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "Proposition 1" in out and "VALID" in out
        assert "Lemma 1" in out

    def test_read_bound_command(self, capsys):
        assert main(["read-bound", "--t", "1", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid: True" in out

    def test_write_bound_command(self, capsys):
        assert main(["write-bound", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid: True" in out

    def test_latency_command(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "abd" in out and "atomic(fast-regular)" in out

    def test_recurrence_command(self, capsys):
        assert main(["recurrence", "--max-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "t_k" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRegistryCli:
    def test_list_protocols(self, capsys):
        assert main(["list-protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("abd", "fast-regular", "atomic-fast-regular", "secret-token"):
            assert name in out
        assert "S ≥ 3t + 1" in out

    def test_run_fault_free(self, capsys):
        assert main(["run", "--protocol", "abd"]) == 0
        out = capsys.readouterr().out
        assert "atomicity:ok" in out
        assert "all 3 trials complete" in out

    def test_run_with_faults(self, capsys):
        assert main(["run", "--protocol", "abd", "--faults", "crash"]) == 0
        out = capsys.readouterr().out
        assert "crash-after-3" in out

    def test_run_explicit_checks_and_trials(self, capsys):
        assert main([
            "run", "--protocol", "fast-regular", "--t", "2",
            "--faults", "stale-echo", "--count", "2",
            "--trials", "2", "--check", "regularity", "--check", "safety",
        ]) == 0
        out = capsys.readouterr().out
        assert "regularity:ok" in out and "safety:ok" in out

    def test_run_unknown_protocol_exits_2(self, capsys):
        assert main(["run", "--protocol", "raft"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_run_strict_overfault_exits_2(self, capsys):
        assert main([
            "run", "--protocol", "abd", "--faults", "silent",
            "--count", "3", "--strict",
        ]) == 2
        assert "strict" in capsys.readouterr().err
