"""Tests for the ``python -m repro`` command-line reproducer."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_summary_runs_clean(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "Proposition 1" in out and "VALID" in out
        assert "Lemma 1" in out

    def test_read_bound_command(self, capsys):
        assert main(["read-bound", "--t", "1", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid: True" in out

    def test_write_bound_command(self, capsys):
        assert main(["write-bound", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "certificate valid: True" in out

    def test_latency_command(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "abd" in out and "atomic(fast-regular)" in out

    def test_recurrence_command(self, capsys):
        assert main(["recurrence", "--max-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "t_k" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRegistryCli:
    def test_list_protocols(self, capsys):
        assert main(["list-protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("abd", "fast-regular", "atomic-fast-regular", "secret-token",
                     "mwmr-fast-regular"):
            assert name in out
        assert "S ≥ 3t + 1" in out
        assert "multi-writer" in out  # the backend column

    def test_list_backends(self, capsys):
        assert main(["list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("single", "multi-writer", "sharded"):
            assert name in out
        assert "mwmr" in out  # aliases are shown

    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios", "--t", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("fault-free", "crash", "silent", "replay", "fabricate"):
            assert name in out
        assert "replay×2" in out  # plans sized for the requested threshold

    def test_run_fault_free(self, capsys):
        assert main(["run", "--protocol", "abd"]) == 0
        out = capsys.readouterr().out
        assert "atomicity:ok" in out
        assert "all 3 trials complete" in out

    def test_run_with_faults(self, capsys):
        assert main(["run", "--protocol", "abd", "--faults", "crash"]) == 0
        out = capsys.readouterr().out
        assert "crash-after-3" in out

    def test_run_explicit_checks_and_trials(self, capsys):
        assert main([
            "run", "--protocol", "fast-regular", "--t", "2",
            "--faults", "stale-echo", "--count", "2",
            "--trials", "2", "--check", "regularity", "--check", "safety",
        ]) == 0
        out = capsys.readouterr().out
        assert "regularity:ok" in out and "safety:ok" in out

    def test_run_unknown_protocol_exits_2(self, capsys):
        assert main(["run", "--protocol", "raft"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_run_strict_overfault_exits_2(self, capsys):
        assert main([
            "run", "--protocol", "abd", "--faults", "silent",
            "--count", "3", "--strict",
        ]) == 2
        assert "strict" in capsys.readouterr().err

    def test_run_parallel_flag(self, capsys):
        assert main([
            "run", "--protocol", "abd", "--trials", "2",
            "--parallel", "--workers", "2",
        ]) == 0
        assert "all 2 trials complete" in capsys.readouterr().out

    def test_run_sharded_backend(self, capsys):
        assert main([
            "run", "--protocol", "abd", "--backend", "sharded",
            "--keys", "4", "--key-skew", "1.0", "--trials", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=sharded (4 key(s)" in out
        assert "all 2 trials complete" in out

    def test_run_mwmr_protocol_resolves_backend(self, capsys):
        assert main([
            "run", "--protocol", "mwmr-fast-regular", "--writers", "3",
            "--trials", "1", "--ops", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=multi-writer" in out and "3 writer(s)" in out

    def test_run_keys_without_keyed_backend_exits_2(self, capsys):
        assert main(["run", "--protocol", "abd", "--keys", "4"]) == 2
        assert "sharded" in capsys.readouterr().err


class TestJsonlAndCompare:
    def _emit(self, path, seed, spacing="50"):
        assert main([
            "run", "--protocol", "abd", "--trials", "2",
            "--seed", str(seed), "--spacing", spacing, "--jsonl", str(path),
        ]) == 0

    def test_jsonl_appends_structured_results(self, tmp_path, capsys):
        sink = tmp_path / "runs.jsonl"
        self._emit(sink, seed=0)
        self._emit(sink, seed=0)
        capsys.readouterr()
        lines = sink.read_text().strip().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["protocol"] == "abd"
        assert len(record["trials"]) == 2
        assert lines[0] == lines[1]  # same seed ⇒ identical structured line

    def test_compare_identical_files_passes(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._emit(a, seed=3)
        self._emit(b, seed=3)
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "no regressions detected" in out

    def test_compare_flags_round_count_regressions(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._emit(a, seed=3)
        record = json.loads(a.read_text())
        # Doctor the candidate: pretend reads got one round slower.
        record["worst_read"] += 1
        for trial in record["trials"]:
            trial["read_rounds"] = [r + 1 for r in trial["read_rounds"]]
        b.write_text(json.dumps(record) + "\n")
        assert main(["compare", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out and "worst_read" in out and "mean read rounds" in out
        # The reverse direction is an improvement, not a regression.
        capsys.readouterr()
        assert main(["compare", str(b), str(a)]) == 0
        assert "improvements" in capsys.readouterr().out

    def test_compare_never_matches_across_backends(self, tmp_path, capsys):
        # Same protocol/scenario/sizes, different backend + key layout:
        # the rows must not be compared as like-for-like.
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._emit(a, seed=3)
        assert main([
            "run", "--protocol", "abd", "--backend", "sharded", "--keys", "4",
            "--trials", "2", "--seed", "3", "--spacing", "50", "--jsonl", str(b),
        ]) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "compared 0 run(s)" in out
        assert "only in" in out

    def test_compare_matches_same_backend_rows(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main([
                "run", "--protocol", "abd", "--backend", "sharded", "--keys", "4",
                "--trials", "2", "--seed", "3", "--jsonl", str(path),
            ]) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "compared 1 run(s)" in out and "no regressions detected" in out

    def test_compare_reports_unmatched_runs(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._emit(a, seed=1)
        b.write_text("")
        assert main(["compare", str(a), str(b)]) == 0
        assert "only in" in capsys.readouterr().out

    def test_compare_rejects_malformed_lines(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text("not json\n")
        b.write_text("")
        assert main(["compare", str(a), str(b)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestTraceDump:
    def test_run_trace_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main([
            "run", "--protocol", "abd", "--trials", "2", "--trace", str(path),
        ]) == 0
        assert f"trace events to {path}" in capsys.readouterr().out
        lines = [line for line in path.read_text().splitlines() if line]
        assert lines
        records = [json.loads(line) for line in lines]
        assert {record["trial"] for record in records} == {0, 1}
        assert {record["kind"] for record in records} >= {"send", "deliver"}
        assert all("op_serial" in record and "tag" in record for record in records)


class TestExploreCli:
    #: The under-provisioned fast-read stack: provisioned for t=1 (S=4),
    #: hit by 2 stale-echo objects.  Seed 7 generates write-then-read.
    REFUTE = [
        "explore", "--protocol", "atomic-fast-regular", "--t", "1", "--S", "4",
        "--faults", "stale-echo", "--count", "2", "--allow-overfault",
        "--ops", "2", "--reads", "0.5", "--seed", "7", "--max-holds", "2",
    ]

    def test_explore_certifies_clean_configuration(self, capsys):
        assert main([
            "explore", "--protocol", "abd", "--ops", "2", "--reads", "0.5",
            "--seed", "7", "--max-holds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out and "atomicity" in out

    def test_explore_finds_violation_and_exits_1(self, capsys):
        assert main(self.REFUTE) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out and "stale read" in out

    def test_expect_violation_inverts_exit_code(self, capsys):
        assert main(self.REFUTE + ["--expect-violation"]) == 0
        assert main([
            "explore", "--protocol", "abd", "--ops", "2", "--seed", "7",
            "--max-holds", "1", "--expect-violation",
        ]) == 1
        assert "expected a violation" in capsys.readouterr().err

    def test_witness_round_trips_through_replay(self, tmp_path, capsys):
        witness = tmp_path / "witness.json"
        assert main(self.REFUTE + ["--expect-violation", "--witness", str(witness)]) == 0
        assert witness.exists()
        assert main(["replay", str(witness)]) == 0
        out = capsys.readouterr().out
        assert "reproduced byte-identically" in out

    def test_tampered_witness_fails_replay(self, tmp_path, capsys):
        witness = tmp_path / "witness.json"
        assert main(self.REFUTE + ["--expect-violation", "--witness", str(witness)]) == 0
        data = json.loads(witness.read_text())
        data["decisions"] = []
        witness.write_text(json.dumps(data))
        assert main(["replay", str(witness)]) == 1
        assert "DIVERGED" in capsys.readouterr().err

    def test_explore_parallel_flag(self, capsys):
        assert main(self.REFUTE + ["--expect-violation", "--parallel"]) == 0
        assert "VIOLATIONS" in capsys.readouterr().out

    def test_explore_unknown_protocol_exits_2(self, capsys):
        assert main(["explore", "--protocol", "raft"]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestFrontierCli:
    #: Two inert ``timed(stale-echo@99)`` objects on the t=1 stack: the
    #: refutation only exists through swept fault-trigger decisions.
    TIMED = [
        "--protocol", "atomic-fast-regular", "--S", "4", "--allow-overfault",
        "--faults", "timed", "--count", "2",
        "--fault-arg", "inner=stale-echo", "--fault-arg", "at=99",
        "--op", "write:v1@0", "--op", "read:1@100", "--max-holds", "3",
    ]

    def test_frontier_certifies_clean_abd(self, capsys):
        assert main([
            "frontier", "--protocol", "abd", "--faults", "crash",
            "--op", "write:v1@0", "--op", "read:1@100",
            "--expect-strongest", "atomicity",
        ]) == 0
        out = capsys.readouterr().out
        assert "✓ atomicity: certified" in out

    def test_frontier_walks_ladder_and_saves_witness(self, tmp_path, capsys):
        witness = tmp_path / "frontier.json"
        assert main(
            ["frontier", *self.TIMED, "--witness", str(witness),
             "--expect-strongest", "k-atomic(2)"]
        ) == 0
        out = capsys.readouterr().out
        assert "✗ atomicity: refuted" in out
        assert "✓ k-atomic(2): certified" in out
        assert "[over budget]" in out
        assert "fire s1@0" in out
        data = json.loads(witness.read_text())
        assert ["fault", 1, 0] in data["decisions"]
        assert main(["replay", str(witness)]) == 0
        assert "reproduced byte-identically" in capsys.readouterr().out

    def test_frontier_expect_mismatch_exits_1(self, capsys):
        assert main(
            ["frontier", *self.TIMED, "--expect-strongest", "atomicity"]
        ) == 1
        assert "expected strongest" in capsys.readouterr().err

    def test_frontier_jsonl_payload(self, tmp_path, capsys):
        sink = tmp_path / "frontier.jsonl"
        assert main(["frontier", *self.TIMED, "--jsonl", str(sink)]) == 0
        capsys.readouterr()
        record = json.loads(sink.read_text())
        assert record["strongest"] == "k-atomic(2)"
        assert record["degraded"] is True
        assert record["witness"]["failures"][0][0] == "atomicity"

    def test_explore_fault_timing_flag(self, tmp_path, capsys):
        base = TestFrontierCli.TIMED + ["--check", "atomicity"]
        assert main(["explore", *base]) == 0  # facade timing: clean
        assert "CERTIFIED" in capsys.readouterr().out
        assert main(["explore", *base, "--fault-timing",
                     "--expect-violation"]) == 0
        assert "fire s1@0" in capsys.readouterr().out

    def test_op_flag_rejects_malformed_entries(self, capsys):
        assert main([
            "explore", "--protocol", "abd", "--op", "write@v1:0",
        ]) == 2
        assert "--op expects" in capsys.readouterr().err

    def test_compare_keys_on_trigger_point(self, tmp_path, capsys):
        """Runs with different fault trigger points are never like-for-like:
        the trigger travels in the scenario label, so timed@0 and timed@99
        rows get distinct compare keys."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, at in ((a, "0"), (b, "99")):
            assert main([
                "run", "--protocol", "abd", "--faults", "timed",
                "--fault-arg", "inner=silent", "--fault-arg", f"at={at}",
                "--trials", "1", "--seed", "3", "--jsonl", str(path),
            ]) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "compared 0 run(s)" in out and "only in" in out
