"""Tests for the masking-quorum safe register."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.registers.base import RegisterSystem
from repro.registers.safe import ByzantineSafeProtocol
from repro.spec.safety import check_swmr_safety
from repro.types import object_id


def make_system(t=1, behaviors=None):
    return RegisterSystem(ByzantineSafeProtocol(), t=t, S=4 * t + 1,
                          n_readers=2, behaviors=behaviors)


class TestConfiguration:
    def test_requires_4t_plus_1(self):
        with pytest.raises(ConfigurationError):
            RegisterSystem(ByzantineSafeProtocol(), t=1, S=4)

    def test_one_round_each_way(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.max_rounds("write") == 1
        assert system.max_rounds("read") == 1


class TestSafety:
    def test_solo_read_sees_last_write(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "a"
        assert check_swmr_safety(history).ok

    def test_safe_under_fabrication(self):
        """Masking quorums: t fabricators cannot outvote the certified value."""
        system = make_system(t=1, behaviors={object_id(1): FabricatingBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.history().reads()[0].value == "a"

    def test_safe_under_stale_echo(self):
        system = make_system(t=2, behaviors={
            object_id(1): StaleEchoBehavior(frozen_state={}),
            object_id(2): StaleEchoBehavior(frozen_state={}),
        })
        system.write("a", at=0)
        system.write("b", at=60)
        system.read(1, at=120)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "b"
        assert check_swmr_safety(history).ok

    def test_safety_checker_passes_history(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=40)
        system.write("b", at=80)
        system.read(2, at=120)
        system.run()
        assert check_swmr_safety(system.history()).ok
