#!/usr/bin/env python3
"""Round-trip latency across the whole protocol suite (Section 5 live).

Runs the same seeded workload over every register protocol in the library
under its covered fault regimes and prints the measured worst-case rounds —
the latency matrix of the paper's Section 5, as a table you can regenerate
on a laptop.

Run:  python examples/latency_comparison.py
"""

from repro.analysis.metrics import measure_latency
from repro.analysis.tables import format_table
from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.registers.bounded_regular import BoundedRegularProtocol
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.secret_token import SecretTokenProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import standard_scenarios

T = 1
N_READERS = 2

SUITE = [
    ("abd (crash)", lambda: AbdProtocol(), ("fault-free", "crash", "silent")),
    ("fast-regular", lambda: FastRegularProtocol("replay"),
     ("fault-free", "crash", "silent", "replay")),
    ("bounded-regular", lambda: BoundedRegularProtocol(),
     ("fault-free", "silent", "fabricate")),
    ("secret-token", lambda: SecretTokenProtocol(),
     ("fault-free", "silent", "replay", "fabricate")),
    ("atomic(fast-regular)",
     lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol("replay"), n_readers=N_READERS),
     ("fault-free", "crash", "silent", "replay")),
    ("atomic(secret-token)",
     lambda: RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=N_READERS),
     ("fault-free", "silent", "replay", "fabricate")),
]


def main() -> None:
    scenarios = {s.name: s for s in standard_scenarios(T)}
    rows = []
    for name, factory, covered in SUITE:
        worst = {"write": 0, "read": 0}
        for scenario_name in covered:
            scenario = scenarios[scenario_name]
            system = RegisterSystem(
                factory(), t=T, n_readers=N_READERS,
                behaviors=scenario.fault_plan.behaviors(T),
            )
            plans = WorkloadGenerator(seed=23, n_readers=N_READERS, spacing=150).plan(12)
            report = measure_latency(system, plans, scenario=scenario_name)
            worst["write"] = max(worst["write"], report.worst_write)
            worst["read"] = max(worst["read"], report.worst_read)
        rows.append({
            "protocol": name,
            "worst write rounds": str(worst["write"]),
            "worst read rounds": str(worst["read"]),
            "regimes": ", ".join(covered),
        })
    print(format_table(
        "Measured worst-case communication rounds (t=1, S per protocol minimum)",
        ("protocol", "worst write rounds", "worst read rounds", "regimes"),
        rows,
    ))
    print()
    print("Expected from the paper: ABD 1W/2R; regular 2W/2R; tokens 2W/1R;")
    print("atomic over regular 2W/4R (optimal, Prop. 1 + 2); atomic over tokens 2W/3R.")


if __name__ == "__main__":
    main()
