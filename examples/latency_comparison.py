#!/usr/bin/env python3
"""Round-trip latency across the whole protocol suite (Section 5 live).

Runs the same seeded workload over every register protocol in the registry
under the fault regimes its metadata covers and prints the measured
worst-case rounds — the latency matrix of the paper's Section 5, as a table
you can regenerate on a laptop.  One :func:`repro.api.sweep` call replaces
the hand-wired protocol × scenario grid the seed version carried.

Run:  python examples/latency_comparison.py
"""

from repro.analysis.tables import format_table
from repro.api import get_spec, sweep

T = 1
N_READERS = 2

SUITE = (
    "abd",
    "fast-regular",
    "bounded-regular",
    "secret-token",
    "atomic-fast-regular",
    "atomic-secret-token",
)


def main() -> None:
    result = sweep(SUITE, t=T, n_readers=N_READERS, operations=12, spacing=150, seed=23)
    rows = []
    for name in result.protocols():
        worst_write, worst_read = result.worst_rounds(name)
        rows.append({
            "protocol": name,
            "worst write rounds": str(worst_write),
            "worst read rounds": str(worst_read),
            "regimes": ", ".join(get_spec(name).scenarios),
        })
    print(format_table(
        "Measured worst-case communication rounds (t=1, S per protocol minimum)",
        ("protocol", "worst write rounds", "worst read rounds", "regimes"),
        rows,
    ))
    print()
    print("Expected from the paper: ABD 1W/2R; regular 2W/2R; tokens 2W/1R;")
    print("atomic over regular 2W/4R (optimal, Prop. 1 + 2); atomic over tokens 2W/3R.")


if __name__ == "__main__":
    main()
