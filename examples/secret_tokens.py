#!/usr/bin/env python3
"""The secret-value model: how one extra assumption buys a round.

Section 5 of the paper: in the stronger authentication model of [DMSS09],
where secret values prevent the adversary from fabricating states, regular
reads drop to one round and the atomic transformation yields 3-round reads
— optimal in that model by the paper's own write lower bound.

This example shows the mechanism concretely:

1. against the *unauthenticated* fast-regular register in replay mode, a
   fabricating object poisons a read (the documented gap);
2. against the secret-token register the very same attack bounces off the
   unforgeability oracle, in a single round;
3. the full atomic stacks land at 4-round vs 3-round reads.

Run:  python examples/secret_tokens.py
"""

from repro import FastRegularProtocol, RegisterSystem, SecretTokenProtocol, check_swmr_atomicity
from repro.faults import FabricatingBehavior
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.types import object_id


def fabrication_poisons_max_report() -> None:
    print("1) fabrication against the replay-mode regular register:")
    system = RegisterSystem(
        FastRegularProtocol(trust_model="replay"), t=1, n_readers=1,
        behaviors={object_id(1): FabricatingBehavior()},
    )
    system.write("genuine", at=0)
    system.read(1, at=60)
    system.run()
    value = system.history().reads()[0].value
    print(f"   read returned {value!r}  <- the sky-high forged timestamp won")
    assert value == "<fabricated>"


def tokens_shrug_it_off() -> None:
    print("\n2) the same attack against the secret-token register:")
    system = RegisterSystem(
        SecretTokenProtocol(), t=1, n_readers=1,
        behaviors={object_id(1): FabricatingBehavior()},
    )
    system.write("genuine", at=0)
    system.read(1, at=60)
    system.run()
    value = system.history().reads()[0].value
    rounds = system.max_rounds("read")
    print(f"   read returned {value!r} in {rounds} round  <- forged pairs fail verification")
    assert value == "genuine" and rounds == 1


def atomic_stacks() -> None:
    print("\n3) the full atomic stacks (both with a fabricating object):")
    for label, substrate, expected_reads in (
        ("unauthenticated", lambda: FastRegularProtocol("unauthenticated"), 4),
        ("secret tokens   ", lambda: SecretTokenProtocol(), 3),
    ):
        protocol = RegularToAtomicProtocol(substrate, n_readers=2)
        system = RegisterSystem(protocol, t=1, n_readers=2,
                                behaviors={object_id(4): FabricatingBehavior()})
        system.write("a", at=0)
        system.read(1, at=80)
        system.write("b", at=160)
        system.read(2, at=240)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        rounds = system.max_rounds("read")
        print(f"   atomic over {label}: reads in {rounds} rounds, "
              f"atomicity {'PASS' if verdict.ok else 'FAIL'}")
        assert verdict.ok and rounds == expected_reads


if __name__ == "__main__":
    fabrication_poisons_max_report()
    tokens_shrug_it_off()
    atomic_stacks()
    print("\nsecret_tokens OK — one assumption, one round saved, exactly as Section 5 says")
