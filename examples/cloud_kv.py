#!/usr/bin/env python3
"""A Byzantine-tolerant cloud key-value store over robust atomic registers.

The paper's introduction motivates robust atomic storage with cloud
key-value APIs: clients rent storage from providers they do not fully
trust, and every round-trip costs money.  This example builds a small KV
store where each key is one SWMR atomic register (the paper's 2W/4R
matching implementation), runs a product-catalog workload against four
storage providers — one of which silently serves stale data — and prints
the consistency verdict plus the monthly bill under S3-style pricing.

Run:  python examples/cloud_kv.py
"""

from repro import FastRegularProtocol, RegisterSystem, check_swmr_atomicity
from repro.cost.model import CloudCostModel
from repro.faults import StaleEchoBehavior
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.types import object_id


class CloudKeyValueStore:
    """One robust atomic register per key, all on the same four providers."""

    def __init__(self, t: int = 1, n_clients: int = 2) -> None:
        self.t = t
        self.n_clients = n_clients
        self._registers: dict[str, RegisterSystem] = {}
        self.reads = 0
        self.writes = 0

    def _register(self, key: str) -> RegisterSystem:
        if key not in self._registers:
            protocol = RegularToAtomicProtocol(
                lambda: FastRegularProtocol(), n_readers=self.n_clients
            )
            system = RegisterSystem(protocol, t=self.t, n_readers=self.n_clients)
            # Provider #2 is compromised across every key: it always
            # replays the oldest state it knows.
            rogue = system.server(object_id(2))
            rogue.behavior = StaleEchoBehavior.freezing(rogue)
            self._registers[key] = system
        return self._registers[key]

    def put(self, key: str, value: str, at: int = 0) -> None:
        self._register(key).write(value, at=at)
        self.writes += 1

    def get(self, key: str, client: int, at: int = 0) -> None:
        self._register(key).read(client, at=at)
        self.reads += 1

    def settle(self) -> dict[str, list]:
        results: dict[str, list] = {}
        for key, system in self._registers.items():
            system.run()
            history = system.history()
            verdict = check_swmr_atomicity(history)
            values = [r.value for r in history.reads()]
            results[key] = [verdict.ok, values, system.max_rounds("read")]
        return results


def main() -> None:
    store = CloudKeyValueStore(t=1, n_clients=2)

    # A product-catalog session: prices change while clients browse.
    store.put("sku:anvil", "$10", at=0)
    store.get("sku:anvil", client=1, at=60)
    store.put("sku:anvil", "$12", at=120)
    store.get("sku:anvil", client=2, at=180)
    store.get("sku:anvil", client=1, at=240)

    store.put("sku:rocket", "in-stock", at=0)
    store.get("sku:rocket", client=2, at=60)
    store.put("sku:rocket", "sold-out", at=120)
    store.get("sku:rocket", client=1, at=180)

    results = store.settle()
    print("key-value store session (provider #2 serves stale data on every key):\n")
    for key, (atomic, values, read_rounds) in sorted(results.items()):
        print(f"  {key:12s} reads returned {values} — "
              f"{'ATOMIC' if atomic else 'INCONSISTENT'} ({read_rounds}-round reads)")
        assert atomic

    model = CloudCostModel(S=4)
    monthly_ops = 1_000_000
    read_share = 0.95
    bill = model.workload(
        reads=int(monthly_ops * read_share), read_rounds=4,
        writes=int(monthly_ops * (1 - read_share)), write_rounds=2,
    )
    naive = model.workload(
        reads=int(monthly_ops * read_share), read_rounds=2,
        writes=int(monthly_ops * (1 - read_share)), write_rounds=1,
    )
    print(f"\ncloud bill for 1M ops/month at $0.4/M requests:")
    print(f"  robust atomic (2W/4R):            ${bill:.2f}")
    print(f"  non-robust baseline (1W/2R):      ${naive:.2f}")
    print(f"  the price of Byzantine robustness: {bill / naive:.2f}x")
    print("\ncloud_kv OK — stale-serving provider masked, atomicity preserved")


if __name__ == "__main__":
    main()
