#!/usr/bin/env python3
"""Executing the paper's lower-bound proofs as adversarial attacks.

Part 1 — Proposition 1: a plausible-looking protocol with 2-round reads
(ABD-style selection + write-back, atomic in every crash-only run) is fed to
the executable read-lower-bound construction.  The adversary schedules
block skips and state forgeries until a read returns 1 in a run where
*nothing was ever written* — the violation certificate prints the audited
chain of indistinguishable runs.

Part 2 — the same construction pointed at the paper's matching 4-round-read
implementation *escapes*: the read simply cannot terminate in two rounds,
which is the executable face of the bound's tightness.

Run:  python examples/lower_bound_demo.py
"""

from repro.core.diagrams import legend, render_run
from repro.core.read_bound import ReadLowerBoundConstruction
from repro.errors import ConstructionEscape
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.strawman import TwoRoundReadProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol


def part_one() -> None:
    print("=" * 72)
    print("Part 1: convicting a 2-round-read protocol (t=1, S=4t, k=2, R=4)")
    print("=" * 72)
    construction = ReadLowerBoundConstruction(
        lambda: TwoRoundReadProtocol(write_rounds=2), t=1
    )
    outcome = construction.execute(keep_runs=True)
    print(outcome.certificate.render())
    print()
    print(legend())
    print()
    print(render_run(outcome.final_run, title="the fatal run (no write, read returns 1):"))
    assert outcome.certificate.valid


def part_two() -> None:
    print()
    print("=" * 72)
    print("Part 2: the matching 2W/4R implementation escapes the adversary")
    print("=" * 72)
    construction = ReadLowerBoundConstruction(
        lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=4),
        t=1,
    )
    try:
        construction.execute()
        raise AssertionError("the 4-round protocol should have escaped!")
    except ConstructionEscape as escape:
        print(f"construction escaped at {escape.step}: {escape.reason}")
        print("(a 4-round read refuses to terminate inside the 2-round trap — "
              "the bound is tight)")


if __name__ == "__main__":
    part_one()
    part_two()
