#!/usr/bin/env python3
"""Quickstart: robust atomic storage in a dozen lines.

Builds the paper's time-optimal robust atomic register — the regular→atomic
transformation over a GV06-style regular substrate — on four simulated
storage objects of which one is Byzantine, runs a few operations, verifies
atomicity, and prints the round counts (2-round writes, 4-round reads).

Everything is addressed by name through the :mod:`repro.api` facade: the
protocol comes from the registry, the Byzantine behaviour from the fault
registry, and the result is a structured :class:`repro.api.RunResult`.

Backend selection
-----------------
The facade runs every experiment through a named **system backend**
(``python -m repro list-backends``):

* ``single`` (default) — one SWMR register, exactly the system below.
* ``multi-writer`` — a writer family over the SWMR→MWMR stack:
  ``Cluster("mwmr-fast-regular", n_writers=3)`` (protocols advertise their
  backend, so the name alone is enough).
* ``sharded`` — many named registers on the same physical objects:
  ``Cluster("abd", backend="sharded", keys=8)``.

The same workload/check/run pipeline drives all three — see
``examples/backends_tour.py`` for the multi-writer and sharded versions of
this script.

Run:  python examples/quickstart.py
"""

from repro.api import Cluster


def main() -> None:
    # The paper's matching implementation: R+1 regular registers, readers
    # write back.  t = 1 Byzantine object out of S = 3t + 1 = 4; the rogue
    # object forever replays its pristine state (the proofs' adversary).
    result = (
        Cluster("atomic-fast-regular", t=1, n_readers=2)
        .with_faults("stale-echo", count=1)
        .with_operations([
            ("write", "hello", 0),
            ("read", 1, 60),
            ("write", "world", 120),
            ("read", 2, 180),
            ("read", 1, 240),
        ])
        .check("atomicity")
        .run()
    )

    trial = result.trials[0]
    print("operation history:")
    print(trial.history.describe())

    verdict = trial.checks["atomicity"]
    print(f"\natomicity check: {'PASS' if verdict.ok else 'FAIL — ' + verdict.explanation}")
    print(f"write rounds (worst): {result.worst_write}  (paper: 2)")
    print(f"read rounds (worst):  {result.worst_read}  (paper: 4)")
    print(f"fault inventory:      {result.faults.describe()}")

    assert result.ok
    assert result.worst_write == 2
    assert result.worst_read == 4
    print("\nquickstart OK — robust atomic storage at the paper's optimal latency")


if __name__ == "__main__":
    main()
