#!/usr/bin/env python3
"""Quickstart: robust atomic storage in a dozen lines.

Builds the paper's time-optimal robust atomic register — the regular→atomic
transformation over a GV06-style regular substrate — on four simulated
storage objects of which one is Byzantine, runs a few operations, verifies
atomicity, and prints the round counts (2-round writes, 4-round reads).

Run:  python examples/quickstart.py
"""

from repro import FastRegularProtocol, RegisterSystem, check_swmr_atomicity
from repro.faults import StaleEchoBehavior
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.types import object_id


def main() -> None:
    # The paper's matching implementation: R+1 regular registers, readers
    # write back.  t = 1 Byzantine object out of S = 3t + 1 = 4.
    protocol = RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)
    system = RegisterSystem(protocol, t=1, n_readers=2)

    # Make one object malicious: it forever replays its pristine state.
    rogue = system.server(object_id(2))
    rogue.behavior = StaleEchoBehavior.freezing(rogue)

    system.write("hello", at=0)
    system.read(1, at=60)
    system.write("world", at=120)
    system.read(2, at=180)
    system.read(1, at=240)
    system.run()

    history = system.history()
    print("operation history:")
    print(history.describe())

    verdict = check_swmr_atomicity(history)
    print(f"\natomicity check: {'PASS' if verdict.ok else 'FAIL — ' + verdict.explanation}")
    print(f"write rounds (worst): {system.max_rounds('write')}  (paper: 2)")
    print(f"read rounds (worst):  {system.max_rounds('read')}  (paper: 4)")

    assert verdict.ok
    assert system.max_rounds("write") == 2
    assert system.max_rounds("read") == 4
    print("\nquickstart OK — robust atomic storage at the paper's optimal latency")


if __name__ == "__main__":
    main()
