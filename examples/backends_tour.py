#!/usr/bin/env python3
"""Backend tour: the same harness driving MWMR and sharded clusters.

``examples/quickstart.py`` runs one SWMR register on the default ``single``
backend.  This script runs the two other built-in backends through the
*same* ``Cluster`` pipeline:

1. **multi-writer** — the paper's closing construction (Section 5): the
   SWMR→MWMR transformation stacked on the regular→atomic transform, so a
   family of three writers shares one atomic register built from Byzantine
   regular registers.  Round accounting: reads cost r + w = 4 rounds,
   writes (r + w) + w = 6 over the GV06 substrate.
2. **sharded** — a keyspace-sharding composite: eight named registers, one
   ABD instance each, every shard multiplexed over the *same* 2t + 1
   physical objects, with a Zipf-skewed workload hammering the first keys.
   Atomicity is checked per key and aggregated.

Both runs survive one stale-echo (Byzantine replay) object — the faulty
*physical* object is shared by every logical register at once.

Run:  python examples/backends_tour.py
"""

import json
import time

from repro.api import Cluster


def multi_writer_demo() -> None:
    result = (
        Cluster("mwmr-fast-regular", t=1, n_readers=2, n_writers=3)
        .with_faults("stale-echo", count=1)
        .with_workload(operations=8, spacing=120)
        .check("atomicity")
        .run(trials=2, seed=11)
    )
    print(result.render())
    assert result.ok
    assert result.worst_write == 6 and result.worst_read == 4
    print("multi-writer OK — 3 writers, linearizable, 6W/4R as advertised\n")


def sharded_demo() -> None:
    result = (
        Cluster("abd", t=1, n_readers=3, backend="sharded", keys=8)
        .with_faults("crash", count=1)
        .with_workload(operations=24, spacing=40, key_skew=1.2)
        .check("atomicity")
        .run(trials=2, seed=23)
    )
    print(result.render())
    verdict = result.trials[0].checks["atomicity"]
    hot = sum(1 for record in result.trials[0].history.records)
    print(f"per-key verdicts: {verdict.per_key}")
    print(f"operations across shards: {hot}")
    assert result.ok
    assert verdict.per_key is not None and len(verdict.per_key) == 8
    assert result.worst_write == 1 and result.worst_read == 2  # ABD, per shard
    print("sharded OK — 8 shards on 3 physical objects, atomic per key\n")


def engine_demo() -> None:
    """Same experiment, two simulation engines, byte-identical results.

    The ``batched`` engine executes runs in per-tick delivery waves instead
    of one heap event per message — same observable behaviour (the results
    below compare equal apart from the ``engine`` metadata tag), less
    Python per message, so it is the throughput choice for big sweeps and
    deep explorations.
    """
    base = (
        Cluster("fast-regular", t=1, n_readers=3)
        .with_workload(operations=20, spacing=15)
        .check("atomicity")
    )
    results = {}
    for engine in ("event", "batched"):
        started = time.perf_counter()
        results[engine] = base.with_engine(engine).run(trials=4, seed=7)
        print(f"  {engine:8s}: {time.perf_counter() - started:.3f}s")
    payloads = {
        engine: {k: v for k, v in result.to_dict().items() if k != "engine"}
        for engine, result in results.items()
    }
    assert json.dumps(payloads["event"], sort_keys=True) == json.dumps(
        payloads["batched"], sort_keys=True
    )
    assert results["batched"].engine == "batched"
    print("engines OK — batched run byte-identical to the event engine\n")


def recovery_demo() -> None:
    """Durable object state: a crash-recovering object rejoins mid-run.

    ``durability="mem"`` journals every object's state through the
    write-ahead storage seam; the ``crash-recover`` fault then crashes one
    object after four deliveries, swallows two more while it is dark, and
    rejoins it from the replayed journal.  With eager sync the rejoined
    object is exactly as stale as what it acknowledged — ABD's quorums
    mask the outage and atomicity holds.  Durable trials also carry the
    retained-space meter: journal bytes before and after compacting to the
    newest record per key.
    """
    result = (
        Cluster("abd", t=1, n_readers=2, durability="mem")
        .with_faults("crash-recover", survive_messages=4, rejoin_after=2)
        .with_workload(operations=10, spacing=40)
        .check("atomicity")
        .run(trials=2, seed=31)
    )
    print(result.render())
    assert result.ok
    meter = result.trials[0].storage
    print(f"retained: {meter['retained_bytes']} journal bytes, "
          f"{meter['retained_timestamps']} distinct timestamp(s); after GC "
          f"{meter['gc_retained_bytes']} bytes, "
          f"{meter['gc_retained_timestamps']} timestamp(s) "
          f"({meter['gc_freed_bytes']} bytes of superseded history freed)")
    assert meter["gc_retained_bytes"] < meter["retained_bytes"]
    print("recovery OK — object crashed, rejoined from its journal, run stayed atomic\n")


def churn_demo() -> None:
    """Reconfiguration under churn: every original object replaced once.

    The ``reconfig`` backend advances membership through explicit epochs.
    ``rolling-replace`` permanently kills s1, then s2, then s3 (staggered,
    so at most t = 1 machine is down at any instant — hence
    ``allow_overfault``); each ``with_repairs`` step retires the dead
    member with an online state-transfer round (read a quorum of the old
    epoch, install the newest state per key on a pre-provisioned spare)
    and activates the next epoch while reads and writes keep flowing.
    Repairs are ordinary two-round client operations, accounted separately
    from reads and writes.
    """
    result = (
        Cluster("abd", t=1, S=3, backend="reconfig", allow_overfault=True)
        .with_faults("rolling-replace", count=3, base=4, stagger=8)
        .with_repairs((1, 40), (2, 110), (3, 180))
        .with_workload(operations=9, reads=0.5, spacing=30)
        .check("atomicity")
        .run(trials=2, seed=3)
    )
    print(result.render())
    assert result.ok and result.incomplete == 0
    for trial in result.trials:
        assert trial.repair_rounds == [2, 2, 2]  # transfer read + install, ×3
    print("churn OK — three permanent losses repaired online, run stayed atomic\n")


def spectrum_demo() -> None:
    """The consistency spectrum: measured staleness for k ∈ {1, 2, 4}.

    The ``k-atomic`` backend serves every read from a view that lags the
    atomic inner register by at most k − 1 completed writes.  Under a
    Zipf-skewed workload the staleness distribution (per read: how many
    completed writes the returned value trails by) shows the knob working:
    the max never reaches k, and ``k-atomic(1)`` is indistinguishable from
    the atomic baseline.  Every run is certified against its own bound by
    the spectrum checker — and the k = 4 run *fails* plain atomicity, which
    is the point.
    """
    from collections import Counter

    from repro.consistency import read_staleness

    baseline = (
        Cluster("abd", t=1, n_readers=3)
        .with_workload(operations=24, spacing=20)
        .check("atomicity")
        .run(trials=1, seed=5)
    )
    print(f"  atomic baseline: worst read {baseline.worst_read} round(s), "
          f"staleness 0 by definition")
    for k in (1, 2, 4):
        result = (
            Cluster("abd", t=1, n_readers=3, consistency=f"k-atomic({k})")
            .with_workload(operations=24, spacing=20)
            .check(f"k-atomic({k})")
            .run(trials=1, seed=5, keep_history=True)
        )
        assert result.ok
        stats = result.trials[0].staleness
        samples = [s for s in read_staleness(result.trials[0].history) if s is not None]
        histogram = "  ".join(
            f"{lag}:{'█' * count}" for lag, count in sorted(Counter(samples).items())
        )
        print(f"  k-atomic({k})    : max={stats['max']} mean={stats['mean']} "
              f"p99={stats['p99']}  |  {histogram}")
        assert stats["max"] <= k - 1
    skewed = (
        Cluster("abd", t=1, n_readers=3, consistency="k-atomic(4)", keys=4)
        .with_workload(operations=24, spacing=25, key_skew=1.2)
        .check("k-atomic(4)", "atomicity")
        .run(trials=1, seed=5)
    )
    per_key = skewed.trials[0].staleness["per_key"]
    print("  Zipf-skewed, 4 shards, k=4: per-key staleness "
          + "  ".join(f"{key}: max={s['max']} mean={s['mean']}"
                      for key, s in sorted(per_key.items())))
    assert skewed.trials[0].checks["k-atomic(4)"].ok
    assert not skewed.trials[0].checks["atomicity"].ok
    print("spectrum OK — staleness bounded by k-1 at every k, "
          "and the k-atomic(4) view measurably violates atomicity\n")


def observability_demo() -> None:
    """The observe axis: spans, metrics, and a Perfetto-loadable timeline.

    ``observe=True`` arms the virtual clock on every fault behavior and
    journal, then derives per-operation/per-round spans and a named-metric
    registry from the run's own deterministic bookkeeping — so the dumps
    are byte-identical across both engines and serial/parallel execution,
    and an unobserved run's output is untouched.  The same derivation
    backs ``repro run --spans/--metrics/--timeline`` and ``repro stats``.
    """
    import io

    from repro.obs import summarize_spans, write_chrome_trace

    result = (
        Cluster("abd", t=1, n_readers=2, durability="mem", observe=True)
        .with_faults("crash-recover", survive_messages=4, rejoin_after=2)
        .with_workload(operations=10, spacing=40)
        .check("atomicity")
        .run(trials=2, seed=31)
    )
    assert result.ok
    records = [
        dict(span, trial=trial.trial)
        for trial in result.trials
        for span in trial.obs["spans"]
    ]
    print(summarize_spans(records))
    metrics = {m["metric"]: m for m in result.trials[0].obs["metrics"]}
    wait = metrics["quorum.wait"]
    print(f"  quorum wait: mean={wait['mean']} p99={wait['p99']} over {wait['count']} rounds")
    print(f"  journal syncs: {metrics['journal.sync.count']['value']} "
          f"({metrics['journal.sync.bytes']['value']} bytes)")
    sink = io.StringIO()
    write_chrome_trace(
        [(t.trial, f"trial {t.trial}", t.obs["spans"]) for t in result.trials], sink
    )
    events = json.loads(sink.getvalue())["traceEvents"]
    recoveries = [e for e in events if e.get("name") == "down"]
    assert recoveries, "the crash window should appear on the timeline"
    print(f"  timeline: {len(events)} Chrome trace events "
          f"({len(recoveries)} recovery window(s)) — load the JSON in Perfetto")
    print("observability OK — spans, metrics and timeline derived with zero "
          "effect on the run itself\n")


def frontier_demo() -> None:
    """The robustness frontier: which model survives an over-budget adversary?

    A ``t=1`` fast-read stack is handed *two* stale objects — one active
    from the start, one wrapped in ``timed(...)`` so its staleness only
    exists at a trigger point the explorer sweeps as a schedule choice.
    ``Cluster.frontier`` walks the checker ladder: atomicity is refuted
    with a minimized witness whose decisions mix held links and fault
    triggers, and k-atomic(2) is certified over the same bounded space —
    graceful degradation, measured instead of assumed.
    """
    cluster = (
        Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
        .with_faults("stale-echo", count=1)
        .with_faults("timed", count=1, inner="stale-echo", at=99)
        .with_operations([("write", "v1", 0), ("read", 1, 100)])
    )
    result = cluster.frontier(max_holds=2, max_schedules=3000)
    print(result.render())
    assert result.outcomes["atomicity"] == "refuted"
    assert result.strongest == "k-atomic(2)" and result.certified
    assert result.witness is not None
    assert any(d.to_json()[0] == "fault" for d in result.witness.decisions), \
        "the separating schedule should fire a fault trigger"
    outcome = result.witness.replay()
    assert result.witness.reproduces(outcome)
    print("frontier OK — atomicity refuted by a fault-timing choice point, "
          "k-atomic(2) certified for the same over-budget cluster\n")


def main() -> None:
    multi_writer_demo()
    sharded_demo()
    engine_demo()
    recovery_demo()
    churn_demo()
    spectrum_demo()
    observability_demo()
    frontier_demo()
    print("backend tour OK — one harness API, five cluster shapes, two engines, "
          "durable recovery, online repair, a consistency spectrum, built-in "
          "observability and a certified robustness frontier")


if __name__ == "__main__":
    main()
