#!/usr/bin/env python3
"""The write lower bound, executed: why fast reads need Ω(log t) writes.

Walks the Lemma 1 chain for k = 3 (t_3 = 5 faults, S = 16 objects, three
readers): a 3-round-read / 3-round-write protocol is cornered run by run —
``pr_l`` (the real run), ``prC_l`` (the mimicry run forcing the read to
return 1), ``Δpr_l`` (one write round deleted) — until ``Δpr_3`` shows a
read returning 1 with no write anywhere.  Also prints the recurrence table
that turns this into the headline k ≤ ⌊log₂⌈(3t+1)/2⌉⌋ bound.

Run:  python examples/write_bound_demo.py
"""

from repro.core.diagrams import legend, render_run
from repro.core.recurrence import max_write_rounds, t_k
from repro.core.write_bound import WriteLowerBoundConstruction
from repro.registers.strawman import ThreeRoundReadProtocol

K = 3


def main() -> None:
    print(f"Lemma 1 instance: k={K}, t=t_{K}={t_k(K)}, S={3 * t_k(K) + 1}, R={K}\n")
    construction = WriteLowerBoundConstruction(
        lambda: ThreeRoundReadProtocol(write_rounds=K), k=K
    )
    outcome = construction.execute(keep_runs=True)
    print(outcome.certificate.render())
    print()
    print(legend())
    print()
    print(render_run(outcome.final_run,
                     title=f"Δpr_{K} — no write was ever invoked, yet rd{K} returns 1:"))
    assert outcome.certificate.valid

    print("\nthe recurrence behind it (t_k faults defeat k-round writes):")
    print("  k :", "  ".join(f"{k:4d}" for k in range(1, 9)))
    print("  t_k:", " ".join(f"{t_k(k):4d}" for k in range(1, 9)))
    print("\nheadline bound — minimum write rounds if reads take 3 rounds:")
    for t in (1, 2, 5, 10, 100, 10_000):
        print(f"  t = {t:>6}: writes need more than {max_write_rounds(t)} rounds "
              f"(k ≤ ⌊log₂⌈(3t+1)/2⌉⌋)")


if __name__ == "__main__":
    main()
